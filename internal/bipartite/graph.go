// Package bipartite provides the weighted bipartite graph of §III.C: one
// vertex class for available workers, one for unassigned tasks, and an edge
// (worker, task) for every assignment the scheduler considers possible, with
// a weight from the configured weight function. The graph is a compact,
// index-based structure built fresh for every matching batch — the paper's
// scheduling component reconstructs it in real time as workers and tasks
// churn — and a Matching tracks a conflict-free edge subset with O(1)
// add/remove, which is what gives the REACT matcher its O(1) per-cycle cost.
package bipartite

import (
	"errors"
	"fmt"
)

// Errors reported by graph construction and matching mutation.
var (
	ErrUnknownVertex  = errors.New("bipartite: unknown vertex")
	ErrDuplicateEdge  = errors.New("bipartite: duplicate edge")
	ErrEdgeConflict   = errors.New("bipartite: edge endpoint already matched")
	ErrEdgeRange      = errors.New("bipartite: edge index out of range")
	ErrNotSelected    = errors.New("bipartite: edge not in matching")
	ErrDuplicateID    = errors.New("bipartite: duplicate vertex id")
	ErrNegativeWeight = errors.New("bipartite: negative edge weight")
)

// Edge is a possible (worker, task) assignment with its weight w_ij =
// F(worker_i, task_j). Endpoints are vertex indices into the owning graph.
type Edge struct {
	Worker int32
	Task   int32
	Weight float64
}

// Graph is an immutable-after-build weighted bipartite graph. Build one with
// a Builder; the matcher packages then operate on indices only.
type Graph struct {
	workerIDs []string
	taskIDs   []string
	edges     []Edge
	byWorker  [][]int32 // edge indices incident to each worker
	byTask    [][]int32 // edge indices incident to each task
}

// Builder accumulates vertices and edges for a Graph. The zero value is
// ready to use.
type Builder struct {
	workerIDs []string
	taskIDs   []string
	workerIdx map[string]int32
	taskIdx   map[string]int32
	edges     []Edge
	seen      map[[2]int32]struct{}
}

// NewBuilder pre-sizes the builder for the expected vertex counts.
func NewBuilder(workers, tasks int) *Builder {
	return &Builder{
		workerIDs: make([]string, 0, workers),
		taskIDs:   make([]string, 0, tasks),
		workerIdx: make(map[string]int32, workers),
		taskIdx:   make(map[string]int32, tasks),
	}
}

func (b *Builder) init() {
	if b.workerIdx == nil {
		b.workerIdx = make(map[string]int32)
		b.taskIdx = make(map[string]int32)
	}
}

// AddWorker registers a worker vertex and returns its index.
func (b *Builder) AddWorker(id string) (int32, error) {
	b.init()
	if _, ok := b.workerIdx[id]; ok {
		return 0, fmt.Errorf("%w: worker %q", ErrDuplicateID, id)
	}
	idx := int32(len(b.workerIDs))
	b.workerIDs = append(b.workerIDs, id)
	b.workerIdx[id] = idx
	return idx, nil
}

// AddTask registers a task vertex and returns its index.
func (b *Builder) AddTask(id string) (int32, error) {
	b.init()
	if _, ok := b.taskIdx[id]; ok {
		return 0, fmt.Errorf("%w: task %q", ErrDuplicateID, id)
	}
	idx := int32(len(b.taskIDs))
	b.taskIDs = append(b.taskIDs, id)
	b.taskIdx[id] = idx
	return idx, nil
}

// AddEdge connects a previously added worker and task with the given
// non-negative weight. Edges the scheduler prunes (deadline probability
// below the bound, reward out of range) are simply never added.
func (b *Builder) AddEdge(workerID, taskID string, weight float64) error {
	b.init()
	wi, ok := b.workerIdx[workerID]
	if !ok {
		return fmt.Errorf("%w: worker %q", ErrUnknownVertex, workerID)
	}
	ti, ok := b.taskIdx[taskID]
	if !ok {
		return fmt.Errorf("%w: task %q", ErrUnknownVertex, taskID)
	}
	return b.AddEdgeIdx(wi, ti, weight)
}

// AddEdgeIdx is AddEdge for callers that kept the vertex indices.
func (b *Builder) AddEdgeIdx(worker, task int32, weight float64) error {
	if worker < 0 || int(worker) >= len(b.workerIDs) {
		return fmt.Errorf("%w: worker index %d", ErrUnknownVertex, worker)
	}
	if task < 0 || int(task) >= len(b.taskIDs) {
		return fmt.Errorf("%w: task index %d", ErrUnknownVertex, task)
	}
	if weight < 0 {
		return fmt.Errorf("%w: %v on (%d,%d)", ErrNegativeWeight, weight, worker, task)
	}
	if b.seen == nil {
		b.seen = make(map[[2]int32]struct{})
	}
	key := [2]int32{worker, task}
	if _, dup := b.seen[key]; dup {
		return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, worker, task)
	}
	b.seen[key] = struct{}{}
	b.edges = append(b.edges, Edge{Worker: worker, Task: task, Weight: weight})
	return nil
}

// Build finalizes the graph. The builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	g := &Graph{
		workerIDs: b.workerIDs,
		taskIDs:   b.taskIDs,
		edges:     b.edges,
		byWorker:  make([][]int32, len(b.workerIDs)),
		byTask:    make([][]int32, len(b.taskIDs)),
	}
	// Two-pass fill keeps the incidence lists in single allocations.
	wDeg := make([]int32, len(b.workerIDs))
	tDeg := make([]int32, len(b.taskIDs))
	for _, e := range b.edges {
		wDeg[e.Worker]++
		tDeg[e.Task]++
	}
	wPool := make([]int32, 0, len(b.edges))
	tPool := make([]int32, 0, len(b.edges))
	for i, d := range wDeg {
		g.byWorker[i] = wPool[len(wPool) : len(wPool) : len(wPool)+int(d)]
		wPool = wPool[:len(wPool)+int(d)]
	}
	for i, d := range tDeg {
		g.byTask[i] = tPool[len(tPool) : len(tPool) : len(tPool)+int(d)]
		tPool = tPool[:len(tPool)+int(d)]
	}
	for i, e := range b.edges {
		g.byWorker[e.Worker] = append(g.byWorker[e.Worker], int32(i))
		g.byTask[e.Task] = append(g.byTask[e.Task], int32(i))
	}
	return g
}

// NumWorkers reports |U|.
func (g *Graph) NumWorkers() int { return len(g.workerIDs) }

// NumTasks reports |V|.
func (g *Graph) NumTasks() int { return len(g.taskIDs) }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns edge i by value.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges exposes the edge slice; callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// WorkerEdges lists the edge indices incident to worker w.
func (g *Graph) WorkerEdges(w int32) []int32 { return g.byWorker[w] }

// TaskEdges lists the edge indices incident to task t.
func (g *Graph) TaskEdges(t int32) []int32 { return g.byTask[t] }

// WorkerID resolves a worker index back to its identifier.
func (g *Graph) WorkerID(w int32) string { return g.workerIDs[w] }

// TaskID resolves a task index back to its identifier.
func (g *Graph) TaskID(t int32) string { return g.taskIDs[t] }

// MaxWeight reports the largest edge weight (0 for an edgeless graph),
// which the matchers use to scale the acceptance constant K.
func (g *Graph) MaxWeight() float64 {
	var max float64
	for _, e := range g.edges {
		if e.Weight > max {
			max = e.Weight
		}
	}
	return max
}

// Full builds the complete bipartite graph on nWorkers×nTasks vertices with
// weights produced by weight(i, j). It is the worst-case topology the
// paper's Figure 3/4 experiments use.
func Full(nWorkers, nTasks int, weight func(w, t int) float64) *Graph {
	b := NewBuilder(nWorkers, nTasks)
	for i := 0; i < nWorkers; i++ {
		if _, err := b.AddWorker(fmt.Sprintf("w%d", i)); err != nil {
			panic(err) // unreachable: generated IDs are unique
		}
	}
	for j := 0; j < nTasks; j++ {
		if _, err := b.AddTask(fmt.Sprintf("t%d", j)); err != nil {
			panic(err)
		}
	}
	b.edges = make([]Edge, 0, nWorkers*nTasks)
	for i := 0; i < nWorkers; i++ {
		for j := 0; j < nTasks; j++ {
			// Bypass the duplicate map: the nest is duplicate-free by
			// construction and the map would dominate build time at 10⁶ edges.
			b.edges = append(b.edges, Edge{Worker: int32(i), Task: int32(j), Weight: weight(i, j)})
		}
	}
	return b.Build()
}
