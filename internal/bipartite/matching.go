package bipartite

import "fmt"

// Matching is a conflict-free subset of a graph's edges — the state x of
// Algorithm 1 — with constant-time membership, add, remove, and weight
// queries. No two selected edges share a vertex; attempts to violate that
// return ErrEdgeConflict so the matcher can run the paper's g(x')=0 branch.
type Matching struct {
	g           *Graph
	selected    []bool
	workerMatch []int32 // selected edge index per worker, or -1
	taskMatch   []int32 // selected edge index per task, or -1
	weight      float64
	size        int
}

// NewMatching returns the empty matching on g.
func NewMatching(g *Graph) *Matching {
	m := &Matching{
		g:           g,
		selected:    make([]bool, g.NumEdges()),
		workerMatch: make([]int32, g.NumWorkers()),
		taskMatch:   make([]int32, g.NumTasks()),
	}
	for i := range m.workerMatch {
		m.workerMatch[i] = -1
	}
	for i := range m.taskMatch {
		m.taskMatch[i] = -1
	}
	return m
}

// Graph returns the graph this matching selects from.
func (m *Matching) Graph() *Graph { return m.g }

// Weight is the objective Σ w_ij·x_ij.
func (m *Matching) Weight() float64 { return m.weight }

// Size is the number of selected edges (matched task count).
func (m *Matching) Size() int { return m.size }

// Selected reports whether edge e is in the matching.
func (m *Matching) Selected(e int32) bool {
	return e >= 0 && int(e) < len(m.selected) && m.selected[e]
}

// WorkerEdge returns the selected edge at worker w, or -1.
func (m *Matching) WorkerEdge(w int32) int32 { return m.workerMatch[w] }

// TaskEdge returns the selected edge at task t, or -1.
func (m *Matching) TaskEdge(t int32) int32 { return m.taskMatch[t] }

// Add selects edge e. It fails with ErrEdgeConflict if either endpoint is
// already matched (the caller inspects WorkerEdge/TaskEdge to find the
// conflicting edges, as Algorithm 1's g(x')=0 branch requires) and with
// ErrEdgeRange / ErrDuplicateEdge for invalid or already-selected edges.
func (m *Matching) Add(e int32) error {
	if e < 0 || int(e) >= len(m.selected) {
		return fmt.Errorf("%w: %d", ErrEdgeRange, e)
	}
	if m.selected[e] {
		return fmt.Errorf("%w: %d already selected", ErrDuplicateEdge, e)
	}
	edge := m.g.Edge(int(e))
	if m.workerMatch[edge.Worker] != -1 || m.taskMatch[edge.Task] != -1 {
		return ErrEdgeConflict
	}
	m.selected[e] = true
	m.workerMatch[edge.Worker] = e
	m.taskMatch[edge.Task] = e
	m.weight += edge.Weight
	m.size++
	return nil
}

// Remove deselects edge e.
func (m *Matching) Remove(e int32) error {
	if e < 0 || int(e) >= len(m.selected) {
		return fmt.Errorf("%w: %d", ErrEdgeRange, e)
	}
	if !m.selected[e] {
		return fmt.Errorf("%w: %d", ErrNotSelected, e)
	}
	edge := m.g.Edge(int(e))
	m.selected[e] = false
	m.workerMatch[edge.Worker] = -1
	m.taskMatch[edge.Task] = -1
	m.weight -= edge.Weight
	m.size--
	return nil
}

// Conflicts returns the selected edges that share an endpoint with edge e
// (at most two: one at the worker, one at the task). A selected e conflicts
// only with itself and yields nil.
func (m *Matching) Conflicts(e int32) []int32 {
	edge := m.g.Edge(int(e))
	var out []int32
	if we := m.workerMatch[edge.Worker]; we != -1 && we != e {
		out = append(out, we)
	}
	if te := m.taskMatch[edge.Task]; te != -1 && te != e {
		out = append(out, te)
	}
	return out
}

// SelectedEdges lists the indices of the selected edges in ascending
// order, for callers that seed another matching from this one.
func (m *Matching) SelectedEdges() []int32 {
	out := make([]int32, 0, m.size)
	for e, sel := range m.selected {
		if sel {
			out = append(out, int32(e))
		}
	}
	return out
}

// Pairs lists the selected edges.
func (m *Matching) Pairs() []Edge {
	out := make([]Edge, 0, m.size)
	for e, sel := range m.selected {
		if sel {
			out = append(out, m.g.Edge(e))
		}
	}
	return out
}

// Validate recomputes the matching invariants from scratch and reports the
// first violation: selected edges sharing a vertex, inconsistent indices, or
// drifted weight/size accounting. Property tests and the matchers' own
// debug assertions use it.
func (m *Matching) Validate() error {
	var weight float64
	size := 0
	workerSeen := make([]int32, m.g.NumWorkers())
	taskSeen := make([]int32, m.g.NumTasks())
	for i := range workerSeen {
		workerSeen[i] = -1
	}
	for i := range taskSeen {
		taskSeen[i] = -1
	}
	for e, sel := range m.selected {
		if !sel {
			continue
		}
		edge := m.g.Edge(e)
		if prev := workerSeen[edge.Worker]; prev != -1 {
			return fmt.Errorf("bipartite: worker %d in edges %d and %d", edge.Worker, prev, e)
		}
		if prev := taskSeen[edge.Task]; prev != -1 {
			return fmt.Errorf("bipartite: task %d in edges %d and %d", edge.Task, prev, e)
		}
		workerSeen[edge.Worker] = int32(e)
		taskSeen[edge.Task] = int32(e)
		weight += edge.Weight
		size++
	}
	for w, want := range workerSeen {
		if m.workerMatch[w] != want {
			return fmt.Errorf("bipartite: workerMatch[%d] = %d, want %d", w, m.workerMatch[w], want)
		}
	}
	for t, want := range taskSeen {
		if m.taskMatch[t] != want {
			return fmt.Errorf("bipartite: taskMatch[%d] = %d, want %d", t, m.taskMatch[t], want)
		}
	}
	if size != m.size {
		return fmt.Errorf("bipartite: size %d, recomputed %d", m.size, size)
	}
	if diff := m.weight - weight; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("bipartite: weight %v, recomputed %v", m.weight, weight)
	}
	return nil
}

// Assignments maps each matched task ID to its worker ID — the result the
// scheduling component hands to the dispatcher.
func (m *Matching) Assignments() map[string]string {
	out := make(map[string]string, m.size)
	for _, e := range m.Pairs() {
		out[m.g.TaskID(e.Task)] = m.g.WorkerID(e.Worker)
	}
	return out
}
