package bipartite

import (
	"fmt"
	"sort"
	"sync"
)

// Dynamic is the incrementally maintained form of the weighted bipartite
// graph (§IV.A: "the weighted bipartite graph is constructed and maintained
// in real-time ... Whenever a worker is available, the corresponding vertex
// is added and vice versa"). Workers and tasks arrive and depart between
// batches; edges attach to live vertex pairs and die with either endpoint.
// Snapshot freezes the current state into the compact immutable Graph the
// matchers consume, so matching never blocks churn.
//
// Dynamic is safe for concurrent use.
type Dynamic struct {
	mu      sync.Mutex
	workers map[string]map[string]float64 // worker → task → weight
	tasks   map[string]map[string]bool    // task → workers with an edge
	edges   int
}

// NewDynamic returns an empty dynamic graph.
func NewDynamic() *Dynamic {
	return &Dynamic{
		workers: make(map[string]map[string]float64),
		tasks:   make(map[string]map[string]bool),
	}
}

// AddWorker inserts a worker vertex; duplicate IDs error.
func (d *Dynamic) AddWorker(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.workers[id]; dup {
		return fmt.Errorf("%w: worker %q", ErrDuplicateID, id)
	}
	d.workers[id] = make(map[string]float64)
	return nil
}

// AddTask inserts a task vertex; duplicate IDs error.
func (d *Dynamic) AddTask(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tasks[id]; dup {
		return fmt.Errorf("%w: task %q", ErrDuplicateID, id)
	}
	d.tasks[id] = make(map[string]bool)
	return nil
}

// RemoveWorker deletes a worker and every incident edge (the worker went
// offline or became busy).
func (d *Dynamic) RemoveWorker(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	edges, ok := d.workers[id]
	if !ok {
		return fmt.Errorf("%w: worker %q", ErrUnknownVertex, id)
	}
	for taskID := range edges {
		delete(d.tasks[taskID], id)
		d.edges--
	}
	delete(d.workers, id)
	return nil
}

// RemoveTask deletes a task and every incident edge (assigned, completed,
// or expired).
func (d *Dynamic) RemoveTask(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	holders, ok := d.tasks[id]
	if !ok {
		return fmt.Errorf("%w: task %q", ErrUnknownVertex, id)
	}
	for workerID := range holders {
		delete(d.workers[workerID], id)
		d.edges--
	}
	delete(d.tasks, id)
	return nil
}

// SetEdge inserts or updates the (worker, task) edge weight. Both vertices
// must exist; negative weights are rejected.
func (d *Dynamic) SetEdge(workerID, taskID string, weight float64) error {
	if weight < 0 {
		return fmt.Errorf("%w: %v on (%s,%s)", ErrNegativeWeight, weight, workerID, taskID)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	we, ok := d.workers[workerID]
	if !ok {
		return fmt.Errorf("%w: worker %q", ErrUnknownVertex, workerID)
	}
	if _, ok := d.tasks[taskID]; !ok {
		return fmt.Errorf("%w: task %q", ErrUnknownVertex, taskID)
	}
	if _, exists := we[taskID]; !exists {
		d.edges++
		d.tasks[taskID][workerID] = true
	}
	we[taskID] = weight
	return nil
}

// RemoveEdge prunes one edge (e.g. the Eq. 3 probability dropped below the
// bound on a deadline recheck).
func (d *Dynamic) RemoveEdge(workerID, taskID string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	we, ok := d.workers[workerID]
	if !ok {
		return fmt.Errorf("%w: worker %q", ErrUnknownVertex, workerID)
	}
	if _, exists := we[taskID]; !exists {
		return fmt.Errorf("%w: (%s,%s)", ErrNotSelected, workerID, taskID)
	}
	delete(we, taskID)
	delete(d.tasks[taskID], workerID)
	d.edges--
	return nil
}

// Weight reads an edge weight.
func (d *Dynamic) Weight(workerID, taskID string) (float64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	we, ok := d.workers[workerID]
	if !ok {
		return 0, false
	}
	w, ok := we[taskID]
	return w, ok
}

// Counts reports (workers, tasks, edges).
func (d *Dynamic) Counts() (workers, tasks, edges int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.workers), len(d.tasks), d.edges
}

// Snapshot freezes the current state into an immutable Graph with vertices
// sorted by ID, so equal dynamic states always snapshot to identical graphs
// (determinism for the matchers' RNG-driven search).
func (d *Dynamic) Snapshot() *Graph {
	d.mu.Lock()
	defer d.mu.Unlock()
	workerIDs := make([]string, 0, len(d.workers))
	for id := range d.workers {
		workerIDs = append(workerIDs, id)
	}
	sort.Strings(workerIDs)
	taskIDs := make([]string, 0, len(d.tasks))
	for id := range d.tasks {
		taskIDs = append(taskIDs, id)
	}
	sort.Strings(taskIDs)

	b := NewBuilder(len(workerIDs), len(taskIDs))
	taskIdx := make(map[string]int32, len(taskIDs))
	for _, id := range workerIDs {
		b.AddWorker(id) // unique by construction
	}
	for i, id := range taskIDs {
		b.AddTask(id)
		taskIdx[id] = int32(i)
	}
	for wi, workerID := range workerIDs {
		// Sorted task order keeps edge indices stable across snapshots of
		// equal states.
		tasks := make([]string, 0, len(d.workers[workerID]))
		for taskID := range d.workers[workerID] {
			tasks = append(tasks, taskID)
		}
		sort.Strings(tasks)
		for _, taskID := range tasks {
			b.AddEdgeIdx(int32(wi), taskIdx[taskID], d.workers[workerID][taskID])
		}
	}
	return b.Build()
}
