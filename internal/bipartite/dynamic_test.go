package bipartite

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDynamicVertexLifecycle(t *testing.T) {
	d := NewDynamic()
	if err := d.AddWorker("w1"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddWorker("w1"); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup worker err = %v", err)
	}
	if err := d.AddTask("t1"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddTask("t1"); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup task err = %v", err)
	}
	w, tk, e := d.Counts()
	if w != 1 || tk != 1 || e != 0 {
		t.Fatalf("counts = %d/%d/%d", w, tk, e)
	}
	if err := d.RemoveWorker("ghost"); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("remove unknown worker err = %v", err)
	}
	if err := d.RemoveTask("ghost"); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("remove unknown task err = %v", err)
	}
}

func TestDynamicEdgeLifecycle(t *testing.T) {
	d := NewDynamic()
	d.AddWorker("w1")
	d.AddTask("t1")
	if err := d.SetEdge("w1", "t1", -1); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("negative weight err = %v", err)
	}
	if err := d.SetEdge("ghost", "t1", 1); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("unknown worker err = %v", err)
	}
	if err := d.SetEdge("w1", "ghost", 1); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("unknown task err = %v", err)
	}
	if err := d.SetEdge("w1", "t1", 0.7); err != nil {
		t.Fatal(err)
	}
	if w, ok := d.Weight("w1", "t1"); !ok || w != 0.7 {
		t.Fatalf("weight = %v, %v", w, ok)
	}
	// Update in place does not double-count.
	d.SetEdge("w1", "t1", 0.9)
	if _, _, e := d.Counts(); e != 1 {
		t.Fatalf("edges = %d after update", e)
	}
	if w, _ := d.Weight("w1", "t1"); w != 0.9 {
		t.Fatalf("updated weight = %v", w)
	}
	if err := d.RemoveEdge("w1", "t1"); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge("w1", "t1"); err == nil {
		t.Fatal("double edge removal accepted")
	}
	if _, _, e := d.Counts(); e != 0 {
		t.Fatalf("edges = %d after removal", e)
	}
}

func TestDynamicVertexRemovalDropsEdges(t *testing.T) {
	d := NewDynamic()
	for i := 0; i < 3; i++ {
		d.AddWorker(fmt.Sprintf("w%d", i))
		d.AddTask(fmt.Sprintf("t%d", i))
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			d.SetEdge(fmt.Sprintf("w%d", i), fmt.Sprintf("t%d", j), 0.5)
		}
	}
	if _, _, e := d.Counts(); e != 9 {
		t.Fatalf("edges = %d", e)
	}
	d.RemoveWorker("w1")
	if w, _, e := d.Counts(); w != 2 || e != 6 {
		t.Fatalf("after worker removal: %d workers %d edges", w, e)
	}
	d.RemoveTask("t0")
	if _, tk, e := d.Counts(); tk != 2 || e != 4 {
		t.Fatalf("after task removal: %d tasks %d edges", tk, e)
	}
	// The survivors are exactly {w0,w2}×{t1,t2}.
	for _, w := range []string{"w0", "w2"} {
		for _, tk := range []string{"t1", "t2"} {
			if _, ok := d.Weight(w, tk); !ok {
				t.Fatalf("edge (%s,%s) lost", w, tk)
			}
		}
	}
}

func TestSnapshotMatchesBatchConstruction(t *testing.T) {
	// Property: a dynamic graph built by churn snapshots to exactly the
	// graph a fresh batch build would produce from the surviving state.
	rng := rand.New(rand.NewSource(77))
	d := NewDynamic()
	type edge struct{ w, t string }
	live := map[edge]float64{}
	workers := map[string]bool{}
	tasks := map[string]bool{}

	for op := 0; op < 2000; op++ {
		switch rng.Intn(6) {
		case 0:
			id := fmt.Sprintf("w%d", rng.Intn(20))
			if !workers[id] {
				d.AddWorker(id)
				workers[id] = true
			}
		case 1:
			id := fmt.Sprintf("t%d", rng.Intn(20))
			if !tasks[id] {
				d.AddTask(id)
				tasks[id] = true
			}
		case 2:
			id := fmt.Sprintf("w%d", rng.Intn(20))
			if workers[id] {
				d.RemoveWorker(id)
				delete(workers, id)
				for e := range live {
					if e.w == id {
						delete(live, e)
					}
				}
			}
		case 3:
			id := fmt.Sprintf("t%d", rng.Intn(20))
			if tasks[id] {
				d.RemoveTask(id)
				delete(tasks, id)
				for e := range live {
					if e.t == id {
						delete(live, e)
					}
				}
			}
		default:
			w := fmt.Sprintf("w%d", rng.Intn(20))
			tk := fmt.Sprintf("t%d", rng.Intn(20))
			if workers[w] && tasks[tk] {
				weight := float64(rng.Intn(100)) / 100
				d.SetEdge(w, tk, weight)
				live[edge{w, tk}] = weight
			}
		}
	}

	g := d.Snapshot()
	if g.NumWorkers() != len(workers) || g.NumTasks() != len(tasks) || g.NumEdges() != len(live) {
		t.Fatalf("snapshot dims %d/%d/%d, want %d/%d/%d",
			g.NumWorkers(), g.NumTasks(), g.NumEdges(), len(workers), len(tasks), len(live))
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		key := edge{g.WorkerID(e.Worker), g.TaskID(e.Task)}
		if want, ok := live[key]; !ok || want != e.Weight {
			t.Fatalf("snapshot edge %v/%v weight %v, want %v (ok=%v)",
				key.w, key.t, e.Weight, want, ok)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Graph {
		d := NewDynamic()
		// Insertion order differs run to run via map iteration inside, but
		// the snapshot must not care.
		for _, id := range []string{"w3", "w1", "w2"} {
			d.AddWorker(id)
		}
		for _, id := range []string{"tB", "tA"} {
			d.AddTask(id)
		}
		d.SetEdge("w2", "tA", 0.5)
		d.SetEdge("w1", "tB", 0.25)
		d.SetEdge("w3", "tA", 0.75)
		return d.Snapshot()
	}
	a, b := build(), build()
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a.Edge(i), b.Edge(i))
		}
	}
	if a.WorkerID(0) != "w1" || a.TaskID(0) != "tA" {
		t.Fatalf("vertex order not sorted: %s/%s", a.WorkerID(0), a.TaskID(0))
	}
}

func TestDynamicConcurrent(t *testing.T) {
	d := NewDynamic()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w := fmt.Sprintf("g%d-w%d", g, i)
				tk := fmt.Sprintf("g%d-t%d", g, i)
				d.AddWorker(w)
				d.AddTask(tk)
				d.SetEdge(w, tk, 0.5)
				if i%3 == 0 {
					d.RemoveWorker(w)
				}
				d.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	w, tk, e := d.Counts()
	// 8 goroutines × 200: workers minus every third removed.
	wantW := 8 * (200 - 67)
	if w != wantW || tk != 1600 {
		t.Fatalf("counts = %d/%d/%d (want %d workers, 1600 tasks)", w, tk, e, wantW)
	}
	// Snapshot of the final state is internally consistent.
	g := d.Snapshot()
	if g.NumEdges() != e {
		t.Fatalf("snapshot edges %d != counts %d", g.NumEdges(), e)
	}
}

func TestQuickDynamicCountsNonNegative(t *testing.T) {
	f := func(ops []uint8) bool {
		d := NewDynamic()
		for _, op := range ops {
			id := fmt.Sprintf("v%d", op%8)
			switch op % 5 {
			case 0:
				d.AddWorker(id)
			case 1:
				d.AddTask(id)
			case 2:
				d.RemoveWorker(id)
			case 3:
				d.RemoveTask(id)
			case 4:
				d.SetEdge(id, id, 0.5)
			}
		}
		w, tk, e := d.Counts()
		if w < 0 || tk < 0 || e < 0 {
			return false
		}
		g := d.Snapshot()
		return g.NumWorkers() == w && g.NumTasks() == tk && g.NumEdges() == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(53))}); err != nil {
		t.Fatal(err)
	}
}
