package lint_test

import (
	"fmt"
	"sort"
	"testing"

	"react/internal/lint"
)

// loadFixture runs the full suite over the fixture module once per
// test; LoadModule is cheap enough (a dozen tiny files) that tests stay
// independent.
func loadFixture(t *testing.T) (*lint.Module, []lint.Finding) {
	t.Helper()
	mod, err := lint.LoadModule("testdata/module")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if mod.Path != "fixmod" {
		t.Fatalf("module path = %q, want fixmod", mod.Path)
	}
	runner := &lint.Runner{}
	return mod, runner.Run(mod)
}

// byAnalyzer keys each finding as "file:line" under its analyzer.
func byAnalyzer(findings []lint.Finding) map[string][]string {
	out := make(map[string][]string)
	for _, f := range findings {
		out[f.Analyzer] = append(out[f.Analyzer], fmt.Sprintf("%s:%d", f.File, f.Line))
	}
	return out
}

// TestAnalyzersOnFixtures is the table-driven contract for every
// analyzer: exactly these findings, at these lines, and nothing else.
func TestAnalyzersOnFixtures(t *testing.T) {
	_, findings := loadFixture(t)
	got := byAnalyzer(findings)

	want := map[string][]string{
		"clockdiscipline": {
			"internal/clockbad/clockbad.go:8",
			"internal/clockbad/clockbad.go:9",
			"internal/clockbad/clockbad.go:10",
			"internal/clockbad/clockbad.go:11",
			"internal/suppressed/suppressed.go:26",
			"internal/suppressed/suppressed.go:33",
		},
		"seededrand": {
			"internal/randbad/randbad.go:8",
			"internal/randbad/randbad.go:9",
			"internal/randbad/randbad.go:10",
			"internal/randbad/randbad.go:10",
		},
		"lockhygiene": {
			"internal/locks/locks.go:28",
			"internal/locks/locks.go:34",
			"internal/locks/locks.go:51",
			"internal/locks/locks.go:56",
		},
		"nakedgoroutine": {
			"internal/spawn/spawn.go:27",
		},
		"errdrop": {
			"internal/errs/errs.go:17",
			"internal/errs/errs.go:18",
			"internal/errs/errs.go:19",
			"internal/errsuse/errsuse.go:9",
		},
		"printfdebug": {
			"internal/printy/printy.go:11",
			"internal/printy/printy.go:12",
		},
		"lint": {
			"internal/suppressed/suppressed.go:32",
		},
	}

	for analyzer, wantSites := range want {
		t.Run(analyzer, func(t *testing.T) {
			gotSites := append([]string{}, got[analyzer]...)
			sort.Strings(gotSites)
			wantSorted := append([]string{}, wantSites...)
			sort.Strings(wantSorted)
			if fmt.Sprint(gotSites) != fmt.Sprint(wantSorted) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", gotSites, wantSorted)
			}
		})
	}
	for analyzer := range got {
		if _, ok := want[analyzer]; !ok {
			t.Errorf("unexpected findings from analyzer %q: %v", analyzer, got[analyzer])
		}
	}
}

// TestDeterministicOutput runs the suite twice and requires identical
// ordered findings — the same property the linter polices in REACT.
func TestDeterministicOutput(t *testing.T) {
	_, first := loadFixture(t)
	_, second := loadFixture(t)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("two runs disagree:\n%v\n%v", first, second)
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("findings not sorted: %v before %v", a, b)
		}
	}
}

// TestSelect covers the per-analyzer enable/disable switches.
func TestSelect(t *testing.T) {
	mod, _ := loadFixture(t)

	only, _, err := lint.Select([]string{"seededrand"}, nil)
	if err != nil {
		t.Fatalf("Select(enable): %v", err)
	}
	findings := (&lint.Runner{Analyzers: only}).Run(mod)
	for _, f := range findings {
		// The malformed-suppression pseudo-finding is driver-level and
		// always on; everything else must be seededrand.
		if f.Analyzer != "seededrand" && f.Analyzer != "lint" {
			t.Errorf("enable=seededrand leaked %v", f)
		}
	}
	if n := len(byAnalyzer(findings)["seededrand"]); n != 4 {
		t.Errorf("seededrand findings = %d, want 4", n)
	}

	most, _, err := lint.Select(nil, []string{"errdrop", "printfdebug"})
	if err != nil {
		t.Fatalf("Select(disable): %v", err)
	}
	got := byAnalyzer((&lint.Runner{Analyzers: most}).Run(mod))
	if len(got["errdrop"]) != 0 || len(got["printfdebug"]) != 0 {
		t.Errorf("disabled analyzers still reported: %v", got)
	}
	if len(got["clockdiscipline"]) == 0 {
		t.Errorf("non-disabled analyzer went silent")
	}

	if _, _, err := lint.Select([]string{"nosuch"}, nil); err == nil {
		t.Errorf("Select accepted unknown analyzer name")
	}

	// Typed names select into the typed tier.
	syn, typ, err := lint.Select([]string{"lockorder"}, nil)
	if err != nil {
		t.Fatalf("Select(lockorder): %v", err)
	}
	if len(syn) != 0 || len(typ) != 1 || typ[0].Name() != "lockorder" {
		t.Errorf("Select(lockorder) = %d syntactic, %v typed", len(syn), typ)
	}
}

// TestFindingString pins the text output format the Makefile and CI
// grep against.
func TestFindingString(t *testing.T) {
	f := lint.Finding{File: "internal/x/y.go", Line: 3, Col: 7, Analyzer: "clockdiscipline", Message: "msg"}
	if got, want := f.String(), "internal/x/y.go:3:7 [clockdiscipline] msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestLoadModuleErrors covers the non-module and missing-root paths.
func TestLoadModuleErrors(t *testing.T) {
	if _, err := lint.LoadModule("testdata"); err == nil {
		t.Errorf("LoadModule on a directory without go.mod succeeded")
	}
	if _, err := lint.LoadModule("testdata/definitely-missing"); err == nil {
		t.Errorf("LoadModule on a missing directory succeeded")
	}
}
