package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrder derives the module's lock-acquisition graph from the
// interprocedural lock-state solution: an edge A → B means some path
// acquires B while A may be held. Cycles in that graph are potential
// deadlocks (two goroutines taking the same pair of locks in opposite
// orders); acquiring a class already held is a self-deadlock. The
// acyclic graph doubles as documentation — RenderLockOrderDoc emits the
// inferred global order into docs/LOCKORDER.md.
type LockOrder struct{}

// NewLockOrder returns the analyzer. The constructor shape matches the
// configurable typed analyzers so DefaultTypedAnalyzers reads uniformly.
func NewLockOrder() LockOrder { return LockOrder{} }

func (LockOrder) Name() string { return "lockorder" }
func (LockOrder) Doc() string {
	return "derive the lock-acquisition graph; report cycles and self-deadlocks"
}

// lockEdge is one observed A-held-while-acquiring-B ordering, with one
// example site kept per (from,to) pair.
type lockEdge struct {
	from, to  int
	pos       token.Pos // acquisition site of `to`
	node      *cgNode
	fromLocal bool // from-lock acquired in the same function
}

func (LockOrder) RunTyped(p *TypedPass) {
	lf, err := p.TM.lockFactsFor()
	if err != nil {
		return // the runner already reported the type-check failure
	}
	edges, selfs := lockOrderEdges(lf)
	for _, s := range selfs {
		held := []int{s.from}
		p.Reportf("lockorder", s.pos,
			"lock %s acquired while already held in %s (self-deadlock): held via %s",
			lf.classes[s.to].key, s.node.name,
			lf.heldDescription(s.node, held, localOnly(s, held)))
	}
	for _, cyc := range lockCycles(lf, edges) {
		p.Reportf("lockorder", cyc.pos,
			"lock-order cycle (potential deadlock): %s; break the cycle or document the intentional order here",
			cyc.describe(lf))
	}
}

func localOnly(e lockEdge, held []int) []int {
	if e.fromLocal {
		return held
	}
	return nil
}

// lockOrderEdges walks every acquisition fact and materializes ordering
// edges (deduplicated, first example site wins — fact iteration order is
// deterministic). Self-edges come back separately: they are findings in
// their own right, not ordering information.
func lockOrderEdges(lf *lockFacts) (edges []lockEdge, selfs []lockEdge) {
	seen := make(map[[2]int]bool)
	for _, n := range lf.graph.nodes {
		ff := lf.perFunc[n]
		if ff == nil {
			continue
		}
		for _, ac := range ff.acquires {
			local := make(map[int]bool, len(ac.localHeld))
			for _, id := range ac.localHeld {
				local[id] = true
			}
			held := lf.finalHeld(n, ac.localHeld)
			for _, h := range held {
				e := lockEdge{from: h, to: ac.class.id, pos: ac.pos, node: n, fromLocal: local[h]}
				if h == ac.class.id {
					selfs = append(selfs, e)
					continue
				}
				key := [2]int{h, ac.class.id}
				if !seen[key] {
					seen[key] = true
					edges = append(edges, e)
				}
			}
		}
	}
	return edges, selfs
}

// lockCycle is one strongly connected component of the ordering graph
// with more than one lock class.
type lockCycle struct {
	classes []int // sorted by key
	edges   []lockEdge
	pos     token.Pos // anchor: first in-cycle edge site in file order
}

func (c lockCycle) describe(lf *lockFacts) string {
	names := make([]string, len(c.classes))
	for i, id := range c.classes {
		names[i] = lf.classes[id].key
	}
	sites := make([]string, 0, len(c.edges))
	for _, e := range c.edges {
		file, line, _ := lf.tm.relPosOf(e.pos)
		sites = append(sites, fmt.Sprintf("%s→%s at %s:%d",
			lf.classes[e.from].key, lf.classes[e.to].key, file, line))
	}
	return strings.Join(names, " ⇄ ") + " (" + strings.Join(sites, "; ") + ")"
}

// lockCycles finds non-trivial SCCs (Tarjan) in the edge set and
// anchors each at its lexicographically first edge site, so the finding
// position — and therefore its suppression point — is stable.
func lockCycles(lf *lockFacts, edges []lockEdge) []lockCycle {
	adj := make(map[int][]int)
	nodes := make(map[int]bool)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from] = true
		nodes[e.to] = true
	}
	var order []int
	for id := range nodes {
		order = append(order, id)
	}
	sort.Ints(order)

	index := make(map[int]int)
	low := make(map[int]int)
	onStack := make(map[int]bool)
	var stack []int
	var sccs [][]int
	next := 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range order {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	var out []lockCycle
	for _, scc := range sccs {
		in := make(map[int]bool, len(scc))
		for _, id := range scc {
			in[id] = true
		}
		sort.Slice(scc, func(i, j int) bool {
			return lf.classes[scc[i]].key < lf.classes[scc[j]].key
		})
		cyc := lockCycle{classes: scc}
		for _, e := range edges {
			if in[e.from] && in[e.to] {
				cyc.edges = append(cyc.edges, e)
			}
		}
		sort.Slice(cyc.edges, func(i, j int) bool {
			return posLess(lf, cyc.edges[i].pos, cyc.edges[j].pos)
		})
		cyc.pos = cyc.edges[0].pos
		out = append(out, cyc)
	}
	sort.Slice(out, func(i, j int) bool { return posLess(lf, out[i].pos, out[j].pos) })
	return out
}

func posLess(lf *lockFacts, a, b token.Pos) bool {
	pa, pb := lf.tm.Fset.Position(a), lf.tm.Fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}

// RenderLockOrderDoc renders the inferred lock-acquisition order as the
// markdown checked in at docs/LOCKORDER.md. CI regenerates it and fails
// on drift, so the document cannot rot. Function-local lock classes are
// omitted: the convention is about module-level locks.
func RenderLockOrderDoc(tm *TypedModule) (string, error) {
	lf, err := tm.lockFactsFor()
	if err != nil {
		return "", err
	}
	edges, _ := lockOrderEdges(lf)

	moduleClass := func(id int) bool {
		return !strings.HasPrefix(lf.classes[id].key, "local:")
	}
	classSet := make(map[int]bool)
	for _, n := range lf.graph.nodes {
		ff := lf.perFunc[n]
		if ff == nil {
			continue
		}
		for _, ac := range ff.acquires {
			if moduleClass(ac.class.id) {
				classSet[ac.class.id] = true
			}
		}
	}
	var docEdges []lockEdge
	for _, e := range edges {
		if moduleClass(e.from) && moduleClass(e.to) {
			docEdges = append(docEdges, e)
		}
	}

	// Kahn topological order over the module classes, deterministic by
	// class key; cyclic leftovers are listed separately.
	indeg := make(map[int]int)
	succ := make(map[int][]int)
	for id := range classSet {
		indeg[id] = 0
	}
	for _, e := range docEdges {
		succ[e.from] = append(succ[e.from], e.to)
		indeg[e.to]++
	}
	byKey := func(ids []int) {
		sort.Slice(ids, func(i, j int) bool { return lf.classes[ids[i]].key < lf.classes[ids[j]].key })
	}
	var ready []int
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	byKey(ready)
	var topo []int
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		topo = append(topo, id)
		var newly []int
		for _, s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				newly = append(newly, s)
			}
		}
		byKey(newly)
		ready = append(ready, newly...)
		byKey(ready)
	}
	var cyclic []int
	for id, d := range indeg {
		if d > 0 {
			cyclic = append(cyclic, id)
		}
	}
	byKey(cyclic)

	ordered := make(map[int]bool)
	for _, e := range docEdges {
		ordered[e.from] = true
		ordered[e.to] = true
	}

	var b strings.Builder
	b.WriteString("# Lock ordering\n\n")
	b.WriteString("<!-- Generated by `reactlint`; do not edit. Regenerate with `make lockorder`. -->\n\n")
	b.WriteString("The lockorder analyzer derives this acquisition graph from the\n")
	b.WriteString("interprocedural lock-state dataflow: an edge `A → B` means some code\n")
	b.WriteString("path acquires `B` while `A` may be held. New code must acquire locks\n")
	b.WriteString("consistently with the order below; a cycle is a potential deadlock and\n")
	b.WriteString("fails `make lint`.\n\n")

	b.WriteString("## Acquisition order\n\n")
	rank := 0
	for _, id := range topo {
		if !ordered[id] {
			continue
		}
		rank++
		fmt.Fprintf(&b, "%d. `%s`\n", rank, lf.classes[id].key)
	}
	if rank == 0 {
		b.WriteString("(no nested acquisitions observed)\n")
	}
	b.WriteString("\n## Observed edges\n\n")
	if len(docEdges) == 0 {
		b.WriteString("(none)\n")
	} else {
		b.WriteString("| held | then acquired | example site |\n")
		b.WriteString("|------|---------------|--------------|\n")
		sort.Slice(docEdges, func(i, j int) bool {
			a, c := docEdges[i], docEdges[j]
			if lf.classes[a.from].key != lf.classes[c.from].key {
				return lf.classes[a.from].key < lf.classes[c.from].key
			}
			return lf.classes[a.to].key < lf.classes[c.to].key
		})
		for _, e := range docEdges {
			file, line, _ := lf.tm.relPosOf(e.pos)
			fmt.Fprintf(&b, "| `%s` | `%s` | `%s:%d` in `%s` |\n",
				lf.classes[e.from].key, lf.classes[e.to].key, file, line, e.node.name)
		}
	}

	b.WriteString("\n## Leaf locks (never held across another acquisition)\n\n")
	var leaves []int
	for id := range classSet {
		if !ordered[id] {
			leaves = append(leaves, id)
		}
	}
	byKey(leaves)
	if len(leaves) == 0 {
		b.WriteString("(none)\n")
	} else {
		for _, id := range leaves {
			fmt.Fprintf(&b, "- `%s`\n", lf.classes[id].key)
		}
	}

	b.WriteString("\n## Cycles\n\n")
	cycles := lockCycles(lf, docEdges)
	if len(cycles) == 0 {
		b.WriteString("None — the module lock graph is acyclic.\n")
	} else {
		for _, c := range cycles {
			fmt.Fprintf(&b, "- %s\n", c.describe(lf))
		}
	}
	return b.String(), nil
}
