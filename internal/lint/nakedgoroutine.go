package lint

import (
	"go/ast"
	"strings"
)

// NakedGoroutine flags `go func(){...}()` launches in internal/
// packages that show no lifecycle signal: nothing ties the goroutine to
// a sync.WaitGroup and nothing in scope suggests a done/stop channel or
// context. Untracked goroutines are what turn Server.Stop into a
// best-effort flush — the north-star deployment must drain cleanly
// under SIGTERM, and the race stress tests only mean something if every
// spawned goroutine provably terminates.
//
// The check is a heuristic over the literal's body and arguments; a
// goroutine whose lifetime is bounded some other way (for example, it
// ranges over a channel the server closes) documents that with a
// //lint:ignore nakedgoroutine <reason>.
type NakedGoroutine struct{}

func (NakedGoroutine) Name() string { return "nakedgoroutine" }
func (NakedGoroutine) Doc() string {
	return "flag go func(){...}() in internal/ with no WaitGroup, done/stop channel, or context"
}

// lifecycleNames are identifier substrings treated as shutdown signals.
var lifecycleNames = []string{"done", "stop", "quit", "ctx", "cancel", "wg", "wait"}

func (g NakedGoroutine) Run(p *Pass) {
	if !inInternal(p.Pkg.RelPath) {
		return
	}
	eachSourceFile(p.Pkg, false, func(f *File) {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			stmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := stmt.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // named funcs/methods manage their own lifecycle contract
			}
			if goroutineHasLifecycleSignal(lit, stmt.Call.Args) {
				return true
			}
			p.Reportf(g.Name(), stmt.Pos(),
				"goroutine has no visible lifecycle: track it with a sync.WaitGroup or give it a done/ctx signal")
			return true
		})
	})
}

// goroutineHasLifecycleSignal scans the literal and its call arguments
// for evidence the goroutine is tracked or stoppable.
func goroutineHasLifecycleSignal(lit *ast.FuncLit, args []ast.Expr) bool {
	found := false
	inspect := func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// wg.Done() / wg.Add(1) on any receiver counts as tracking.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Add" {
					found = true
					return false
				}
			}
		case *ast.Ident:
			lower := strings.ToLower(n.Name)
			for _, sig := range lifecycleNames {
				if strings.Contains(lower, sig) {
					found = true
					return false
				}
			}
		case *ast.SelectorExpr:
			lower := strings.ToLower(n.Sel.Name)
			for _, sig := range lifecycleNames {
				if strings.Contains(lower, sig) {
					found = true
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(lit, inspect)
	for _, a := range args {
		ast.Inspect(a, inspect)
	}
	return found
}
