package lint

import (
	"encoding/json"
	"io"
)

// Report is the machine-readable result of a run — the schema behind
// reactlint -json. Count is redundant with len(Findings) but makes the
// common "how many" query a one-field read for CI tooling.
type Report struct {
	Module   string    `json:"module"`
	Count    int       `json:"count"`
	Findings []Finding `json:"findings"`
}

// NewReport assembles the JSON report for a finished run.
func NewReport(mod *Module, findings []Finding) Report {
	if findings == nil {
		findings = []Finding{} // marshal as [], never null
	}
	return Report{Module: mod.Path, Count: len(findings), Findings: findings}
}

// WriteJSON emits the report, indented, with a trailing newline.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
