package lint

import (
	"encoding/json"
	"io"
)

// Report is the machine-readable result of a run — the schema behind
// reactlint -json. Count is redundant with len(Findings) but makes the
// common "how many" query a one-field read for CI tooling. Tier and
// Analyzers record what actually ran, so an archived CI artifact is
// self-describing.
type Report struct {
	Module    string    `json:"module"`
	Tier      string    `json:"tier"` // "syntactic", "typed", or "all"
	Analyzers []string  `json:"analyzers"`
	Count     int       `json:"count"`
	Findings  []Finding `json:"findings"`
}

// NewReport assembles the JSON report for a finished run.
func NewReport(mod *Module, tier string, r *Runner, findings []Finding) Report {
	if findings == nil {
		findings = []Finding{} // marshal as [], never null
	}
	names := []string{}
	syntactic := r.Analyzers
	if syntactic == nil {
		syntactic = DefaultAnalyzers()
	}
	for _, a := range syntactic {
		names = append(names, a.Name())
	}
	for _, a := range r.Typed {
		names = append(names, a.Name())
	}
	return Report{
		Module: mod.Path, Tier: tier, Analyzers: names,
		Count: len(findings), Findings: findings,
	}
}

// WriteJSON emits the report, indented, with a trailing newline.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
