package lint

// BlockingUnderLock reports operations that can block indefinitely —
// channel sends/receives, selects without a default, network and stream
// I/O, time.Sleep / clock.Sleep, WaitGroup.Wait — at sites where the
// lock-state dataflow says a mutex may be held. A blocked holder stalls
// every other goroutine contending for the lock; in the live server
// that turns one slow client connection into a module-wide pause.
//
// Exemptions are built into the fact collection: sync.Cond.Wait
// releases its mutex while parked, a select with a default clause never
// blocks, and the communication clauses of a select are judged as part
// of the select, not as standalone channel ops.
type BlockingUnderLock struct{}

// NewBlockingUnderLock returns the analyzer.
func NewBlockingUnderLock() BlockingUnderLock { return BlockingUnderLock{} }

func (BlockingUnderLock) Name() string { return "blockingunderlock" }
func (BlockingUnderLock) Doc() string {
	return "flag channel ops, I/O, and sleeps that may execute while a mutex is held"
}

func (BlockingUnderLock) RunTyped(p *TypedPass) {
	lf, err := p.TM.lockFactsFor()
	if err != nil {
		return
	}
	for _, n := range lf.graph.nodes {
		ff := lf.perFunc[n]
		if ff == nil {
			continue
		}
		for _, bf := range ff.blocks {
			held := lf.finalHeld(n, bf.localHeld)
			if len(held) == 0 {
				continue
			}
			p.Reportf("blockingunderlock", bf.pos,
				"blocking operation (%s) in %s while holding %s",
				bf.desc, n.name, lf.heldDescription(n, held, bf.localHeld))
		}
	}
}
