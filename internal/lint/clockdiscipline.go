package lint

import "go/ast"

// ClockDiscipline forbids direct use of the wall clock outside the
// packages that are allowed to own it. Every scheduling decision in
// REACT must flow through an injected clock.Clock so the discrete-event
// simulator can drive the exact same code under virtual time — that is
// the property that makes the paper's figures regenerate byte-for-byte.
// A single stray time.Now() in a hot path silently re-couples the
// system to the machine it runs on.
//
// Test files are exempt: tests legitimately bound their own wall-clock
// runtime (time.After watchdogs) without touching scheduling logic.
type ClockDiscipline struct {
	// Allow lists module-relative directory prefixes where wall-clock
	// calls are permitted. Nil means DefaultClockAllow.
	Allow []string
}

// DefaultClockAllow is the sanctioned wall-clock surface: the clock
// package itself (it wraps time.Now), the wire transport (network I/O
// deadlines are inherently wall-clock), and the binaries and examples
// that run against real deployments.
var DefaultClockAllow = []string{"internal/clock", "internal/wire", "cmd", "examples"}

// forbiddenTimeFuncs are the time package entry points that read or
// wait on the wall clock. Constructors like time.Date and pure
// arithmetic (t.Add, t.Sub) are fine — they are clock-free.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

func (ClockDiscipline) Name() string { return "clockdiscipline" }
func (ClockDiscipline) Doc() string {
	return "forbid wall-clock time.* calls outside internal/clock, internal/wire, cmd/, examples/"
}

func (c ClockDiscipline) Run(p *Pass) {
	allow := c.Allow
	if allow == nil {
		allow = DefaultClockAllow
	}
	if underAny(p.Pkg.RelPath, allow) {
		return
	}
	eachSourceFile(p.Pkg, false, func(f *File) {
		timeName, ok := importLocalName(f.AST, "time")
		if !ok {
			return
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != timeName || !forbiddenTimeFuncs[sel.Sel.Name] {
				return true
			}
			p.Reportf(c.Name(), sel.Pos(),
				"time.%s couples this package to the wall clock; take a clock.Clock (internal/clock) instead",
				sel.Sel.Name)
			return true
		})
	})
}
