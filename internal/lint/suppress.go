package lint

import "strings"

// ignoreDirective is the comment prefix that suppresses a finding:
//
//	//lint:ignore <analyzer> <reason>
//
// The directive covers findings on its own line (trailing comment) and
// on the line immediately below (comment-above style). <analyzer> may
// be "*" to suppress every analyzer on that line. The reason is
// mandatory so every suppression documents why the invariant is safe to
// break there — a bare directive is reported as a "lint" finding.
const ignoreDirective = "lint:ignore"

type suppressionSet struct {
	byFileLine map[string]map[int][]string // file → line → analyzers
	malformed  []Finding
}

// covers reports whether the finding is silenced by a directive on its
// line or the line above.
func (s suppressionSet) covers(f Finding) bool {
	lines := s.byFileLine[f.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Line, f.Line - 1} {
		for _, name := range lines[line] {
			if name == "*" || name == f.Analyzer {
				return true
			}
		}
	}
	return false
}

// suppressionsFor parses every comment in the package once.
func suppressionsFor(pkg *Package) suppressionSet {
	set := suppressionSet{byFileLine: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, group := range f.AST.Comments {
			for _, c := range group.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				file := pkg.relFile(pos.Filename)
				name, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					set.malformed = append(set.malformed, Finding{
						File:     file,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: "lint",
						Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				lines := set.byFileLine[file]
				if lines == nil {
					lines = make(map[int][]string)
					set.byFileLine[file] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	return set
}

// directiveText returns the payload after "lint:ignore" when the
// comment is a suppression directive. Only line comments written
// exactly as //lint:ignore (no space, matching staticcheck's directive
// grammar) count.
func directiveText(comment string) (string, bool) {
	rest, ok := strings.CutPrefix(comment, "//"+ignoreDirective)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //lint:ignoreXYZ
	}
	return rest, true
}
