package lint

import (
	"sort"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a finding:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive covers findings on its own line (trailing comment) and
// on the line immediately below (comment-above style). <analyzer> may
// be "*" to suppress every analyzer on that line, or a comma-separated
// list when one site trips several analyzers (a wall-clock read that is
// both a clockdiscipline and a clocktaint finding). The reason is
// mandatory so every suppression documents why the invariant is safe to
// break there — a bare directive is reported as a "lint" finding.
const ignoreDirective = "lint:ignore"

// directive is one parsed //lint:ignore comment, tracked individually
// so the runner can report suppressions that no longer match any
// diagnostic (staleness: satellite of the typed tier).
type directive struct {
	file      string
	line, col int
	names     []string
	used      map[string]bool // name -> matched at least one finding
}

type suppressionSet struct {
	byFileLine map[string]map[int][]*directive // file -> line -> directives
	directives []*directive
	malformed  []Finding
}

// covers reports whether the finding is silenced by a directive on its
// line or the line above, marking every matching directive name as used
// so redundant suppressions still show up as stale.
func (s *suppressionSet) covers(f Finding) bool {
	lines := s.byFileLine[f.File]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{f.Line, f.Line - 1} {
		for _, d := range lines[line] {
			for _, name := range d.names {
				if name == "*" || name == f.Analyzer {
					d.used[name] = true
					hit = true
				}
			}
		}
	}
	return hit
}

// stale reports directives (or individual names within one) that
// suppressed nothing, plus names that don't exist in the catalog at
// all. Only meaningful after covers() has seen every raw finding from a
// full-suite run.
func (s *suppressionSet) stale(catalog map[string]bool) []Finding {
	var out []Finding
	for _, d := range s.directives {
		for _, name := range d.names {
			switch {
			case name != "*" && !catalog[name]:
				out = append(out, Finding{
					File: d.file, Line: d.line, Col: d.col, Analyzer: "staleignore",
					Message: "suppression names unknown analyzer " + quote(name),
				})
			case !d.used[name]:
				out = append(out, Finding{
					File: d.file, Line: d.line, Col: d.col, Analyzer: "staleignore",
					Message: "stale suppression: no " + quote(name) + " diagnostic here any more; delete it",
				})
			}
		}
	}
	return out
}

func quote(s string) string { return "\"" + s + "\"" }

// suppressionsForModule parses every comment in every package once and
// merges the result into one module-wide set: typed-tier findings cross
// package boundaries, so suppression filtering has to be global.
func suppressionsForModule(mod *Module) *suppressionSet {
	set := &suppressionSet{byFileLine: make(map[string]map[int][]*directive)}
	for _, pkg := range mod.Packages {
		set.addPackage(pkg)
	}
	sort.Slice(set.directives, func(i, j int) bool {
		a, b := set.directives[i], set.directives[j]
		if a.file != b.file {
			return a.file < b.file
		}
		return a.line < b.line
	})
	return set
}

func (s *suppressionSet) addPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, group := range f.AST.Comments {
			for _, c := range group.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				file := pkg.relFile(pos.Filename)
				nameList, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				names := splitNames(nameList)
				if len(names) == 0 || strings.TrimSpace(reason) == "" {
					s.malformed = append(s.malformed, Finding{
						File:     file,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: "lint",
						Message:  "malformed suppression: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				d := &directive{
					file: file, line: pos.Line, col: pos.Column,
					names: names, used: make(map[string]bool),
				}
				s.directives = append(s.directives, d)
				lines := s.byFileLine[file]
				if lines == nil {
					lines = make(map[int][]*directive)
					s.byFileLine[file] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
}

// splitNames parses the comma-separated analyzer list; an empty element
// (trailing comma, "a,,b") poisons the whole directive so typos fail
// loudly rather than half-suppressing.
func splitNames(list string) []string {
	if list == "" {
		return nil
	}
	parts := strings.Split(list, ",")
	for _, p := range parts {
		if p == "" {
			return nil
		}
	}
	return parts
}

// directiveText returns the payload after "lint:ignore" when the
// comment is a suppression directive. Only line comments written
// exactly as //lint:ignore (no space, matching staticcheck's directive
// grammar) count.
func directiveText(comment string) (string, bool) {
	rest, ok := strings.CutPrefix(comment, "//"+ignoreDirective)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //lint:ignoreXYZ
	}
	return rest, true
}
