// Package lint is REACT's project-specific static-analysis suite. The
// paper's headline numbers (deadline-miss ratios, matcher wall-time
// bounds) are reproducible only because the simulation substrate is
// deterministic: every component takes an injected clock.Clock and an
// explicitly seeded *rand.Rand. Nothing in the language enforces that
// discipline, so this package does — it walks the module with go/parser
// and go/ast (no go/packages, no export data, no network) and runs a
// pluggable set of analyzers that machine-check the invariants the
// figures depend on: clock discipline, seeded randomness, lock hygiene,
// tracked goroutines, handled errors, and structured logging.
//
// The driver is deliberately syntactic. It parses every package in the
// module, builds a module-wide function-signature index (so errdrop
// knows which react functions return errors without type-checking
// against export data), and runs each analyzer over each package in
// parallel, one goroutine per package. Findings are deterministic:
// sorted by file, line, column, analyzer.
//
// Findings can be suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory — a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one pluggable check. Implementations must be safe for
// concurrent use: Run is invoked from one goroutine per package.
type Analyzer interface {
	// Name is the identifier used in findings, suppression comments,
	// and the -enable/-disable flags.
	Name() string
	// Doc is a one-line description of what the analyzer enforces.
	Doc() string
	// Run inspects one package and reports findings through the pass.
	Run(p *Pass)
}

// Finding is one reported violation.
type Finding struct {
	File     string `json:"file"` // module-relative path
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the finding in the tool's text format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Pass carries everything an analyzer needs to inspect one package.
type Pass struct {
	Pkg   *Package
	Index *Index // module-wide signature index

	mu       sync.Mutex
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(name string, pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.findings = append(p.findings, Finding{
		File:     p.Pkg.relFile(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypedAnalyzer is a check in the typed tier: it sees the whole module
// at once — type information, control-flow graphs, the call graph, and
// the interprocedural lock-state solution — instead of one package's
// syntax.
type TypedAnalyzer interface {
	Name() string
	Doc() string
	RunTyped(p *TypedPass)
}

// TypedPass carries the typed view of the module to a TypedAnalyzer.
type TypedPass struct {
	TM *TypedModule

	// sup is the module's suppression set. Analyzers may consult it to
	// treat a suppressed source as sanctioned (clocktaint: a sanctioned
	// wall-clock read does not taint its downstream flows); doing so
	// marks the directive used, so it is not reported stale.
	sup *suppressionSet

	findings []Finding
}

// Reportf records a finding at pos. Typed analyzers run sequentially
// (they share lazily computed module-wide facts), so no lock is needed.
func (p *TypedPass) Reportf(name string, pos token.Pos, format string, args ...any) {
	file, line, col := p.TM.relPosOf(pos)
	p.findings = append(p.findings, Finding{
		File:     file,
		Line:     line,
		Col:      col,
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Runner loads a module and applies a set of analyzers to it.
type Runner struct {
	Analyzers []Analyzer
	Typed     []TypedAnalyzer

	// StaleCheck reports //lint:ignore directives that no longer match
	// any diagnostic. Only meaningful when the full suite runs: with
	// analyzers filtered out, their suppressions would look stale.
	StaleCheck bool

	// TM is the typed module view, filled in by Run when the typed tier
	// executes (callers may read it afterwards, e.g. to render
	// docs/LOCKORDER.md without type-checking twice).
	TM *TypedModule
}

// DefaultAnalyzers returns the full REACT suite in its canonical order.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		ClockDiscipline{},
		SeededRand{},
		LockHygiene{},
		NakedGoroutine{},
		ErrDrop{},
		PrintfDebug{},
	}
}

// DefaultTypedAnalyzers returns the typed tier in its canonical order.
func DefaultTypedAnalyzers() []TypedAnalyzer {
	return []TypedAnalyzer{
		NewLockOrder(),
		NewHookReentrancy(),
		NewBlockingUnderLock(),
		NewClockTaint(),
	}
}

// Catalog is the set of every analyzer name across both tiers plus the
// pseudo-analyzers the driver itself emits ("lint" for malformed
// suppressions, "staleignore" for stale ones). Suppression directives
// are validated against it.
func Catalog() map[string]bool {
	names := map[string]bool{"lint": true, "staleignore": true}
	for _, a := range DefaultAnalyzers() {
		names[a.Name()] = true
	}
	for _, a := range DefaultTypedAnalyzers() {
		names[a.Name()] = true
	}
	return names
}

// Select filters names against the full catalog (both tiers): enable
// keeps only the named analyzers (empty means all), disable then
// removes names. An unknown name is an error so typos fail loudly. The
// syntactic and typed selections come back separately because the
// runner executes them differently.
func Select(enable, disable []string) ([]Analyzer, []TypedAnalyzer, error) {
	syntactic := DefaultAnalyzers()
	typed := DefaultTypedAnalyzers()
	known := make(map[string]bool, len(syntactic)+len(typed))
	for _, a := range syntactic {
		known[a.Name()] = true
	}
	for _, a := range typed {
		known[a.Name()] = true
	}
	for _, n := range append(append([]string{}, enable...), disable...) {
		if !known[n] {
			return nil, nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	keep := make(map[string]bool, len(known))
	if len(enable) == 0 {
		for n := range known {
			keep[n] = true
		}
	}
	for _, n := range enable {
		keep[n] = true
	}
	for _, n := range disable {
		keep[n] = false
	}
	var outS []Analyzer
	for _, a := range syntactic {
		if keep[a.Name()] {
			outS = append(outS, a)
		}
	}
	var outT []TypedAnalyzer
	for _, a := range typed {
		if keep[a.Name()] {
			outT = append(outT, a)
		}
	}
	return outS, outT, nil
}

// Run analyzes every package with the syntactic tier, the whole module
// with the typed tier, applies suppressions module-wide, and returns
// the surviving findings sorted by position. Malformed suppression
// comments are reported as findings of the pseudo-analyzer "lint";
// stale ones (when StaleCheck is set) as "staleignore". A module that
// fails to type-check yields a single "lint" finding and skips the
// typed tier rather than reasoning from partial types.
func (r *Runner) Run(mod *Module) []Finding {
	analyzers := r.Analyzers
	if analyzers == nil {
		analyzers = DefaultAnalyzers()
	}
	// Parsed up front: the typed tier consults directives while running
	// (sanctioned taint sources), and the same set then filters findings
	// so every use counts toward staleness.
	sup := suppressionsForModule(mod)

	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		out []Finding
	)
	for _, pkg := range mod.Packages {
		wg.Add(1)
		go func(pkg *Package) {
			defer wg.Done()
			pass := &Pass{Pkg: pkg, Index: mod.Index}
			for _, a := range analyzers {
				a.Run(pass)
			}
			mu.Lock()
			out = append(out, pass.findings...)
			mu.Unlock()
		}(pkg)
	}
	wg.Wait()

	if len(r.Typed) > 0 {
		tm, err := TypeCheck(mod)
		if err != nil {
			out = append(out, Finding{
				File:     "go.mod",
				Line:     1,
				Col:      1,
				Analyzer: "lint",
				Message:  fmt.Sprintf("typed tier skipped: %v", err),
			})
		} else {
			r.TM = tm
			tpass := &TypedPass{TM: tm, sup: sup}
			for _, a := range r.Typed {
				a.RunTyped(tpass)
			}
			out = append(out, tpass.findings...)
		}
	}

	kept := out[:0]
	for _, f := range out {
		if !sup.covers(f) {
			kept = append(kept, f)
		}
	}
	kept = append(kept, sup.malformed...)
	if r.StaleCheck {
		kept = append(kept, sup.stale(Catalog())...)
	}
	out = kept

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// inInternal reports whether the package lives under internal/ — the
// production middleware where the strictest analyzers apply.
func inInternal(rel string) bool {
	return rel == "internal" || strings.HasPrefix(rel, "internal/")
}

// underAny reports whether rel equals or lives under one of the prefixes.
func underAny(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// eachSourceFile visits the package's files, optionally skipping tests.
func eachSourceFile(pkg *Package, includeTests bool, fn func(f *File)) {
	for _, f := range pkg.Files {
		if f.Test && !includeTests {
			continue
		}
		fn(f)
	}
}

// importLocalName returns the identifier by which the import path is
// referenced in f: the declared alias, else the path's base name. The
// second result is false when the file does not import path (or imports
// it blank or with a dot, which selector-based analyzers cannot track).
func importLocalName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			n := imp.Name.Name
			if n == "_" || n == "." {
				return "", false
			}
			return n, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}
