// Package lint is REACT's project-specific static-analysis suite. The
// paper's headline numbers (deadline-miss ratios, matcher wall-time
// bounds) are reproducible only because the simulation substrate is
// deterministic: every component takes an injected clock.Clock and an
// explicitly seeded *rand.Rand. Nothing in the language enforces that
// discipline, so this package does — it walks the module with go/parser
// and go/ast (no go/packages, no export data, no network) and runs a
// pluggable set of analyzers that machine-check the invariants the
// figures depend on: clock discipline, seeded randomness, lock hygiene,
// tracked goroutines, handled errors, and structured logging.
//
// The driver is deliberately syntactic. It parses every package in the
// module, builds a module-wide function-signature index (so errdrop
// knows which react functions return errors without type-checking
// against export data), and runs each analyzer over each package in
// parallel, one goroutine per package. Findings are deterministic:
// sorted by file, line, column, analyzer.
//
// Findings can be suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory — a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one pluggable check. Implementations must be safe for
// concurrent use: Run is invoked from one goroutine per package.
type Analyzer interface {
	// Name is the identifier used in findings, suppression comments,
	// and the -enable/-disable flags.
	Name() string
	// Doc is a one-line description of what the analyzer enforces.
	Doc() string
	// Run inspects one package and reports findings through the pass.
	Run(p *Pass)
}

// Finding is one reported violation.
type Finding struct {
	File     string `json:"file"` // module-relative path
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the finding in the tool's text format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Pass carries everything an analyzer needs to inspect one package.
type Pass struct {
	Pkg   *Package
	Index *Index // module-wide signature index

	mu       sync.Mutex
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(name string, pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.findings = append(p.findings, Finding{
		File:     p.Pkg.relFile(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Runner loads a module and applies a set of analyzers to it.
type Runner struct {
	Analyzers []Analyzer
}

// DefaultAnalyzers returns the full REACT suite in its canonical order.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		ClockDiscipline{},
		SeededRand{},
		LockHygiene{},
		NakedGoroutine{},
		ErrDrop{},
		PrintfDebug{},
	}
}

// Select filters names against the full suite: enable keeps only the
// named analyzers (empty means all), disable then removes names. An
// unknown name is an error so typos fail loudly.
func Select(enable, disable []string) ([]Analyzer, error) {
	all := DefaultAnalyzers()
	known := make(map[string]Analyzer, len(all))
	for _, a := range all {
		known[a.Name()] = a
	}
	for _, n := range append(append([]string{}, enable...), disable...) {
		if _, ok := known[n]; !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	keep := make(map[string]bool, len(all))
	if len(enable) == 0 {
		for n := range known {
			keep[n] = true
		}
	}
	for _, n := range enable {
		keep[n] = true
	}
	for _, n := range disable {
		keep[n] = false
	}
	var out []Analyzer
	for _, a := range all {
		if keep[a.Name()] {
			out = append(out, a)
		}
	}
	return out, nil
}

// Run analyzes every package, applies suppressions, and returns the
// surviving findings sorted by position. Malformed suppression comments
// are reported as findings of the pseudo-analyzer "lint".
func (r *Runner) Run(mod *Module) []Finding {
	analyzers := r.Analyzers
	if analyzers == nil {
		analyzers = DefaultAnalyzers()
	}

	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		out []Finding
	)
	for _, pkg := range mod.Packages {
		wg.Add(1)
		go func(pkg *Package) {
			defer wg.Done()
			pass := &Pass{Pkg: pkg, Index: mod.Index}
			for _, a := range analyzers {
				a.Run(pass)
			}
			sup := suppressionsFor(pkg)
			kept := pass.findings[:0]
			for _, f := range pass.findings {
				if !sup.covers(f) {
					kept = append(kept, f)
				}
			}
			kept = append(kept, sup.malformed...)
			mu.Lock()
			out = append(out, kept...)
			mu.Unlock()
		}(pkg)
	}
	wg.Wait()

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// inInternal reports whether the package lives under internal/ — the
// production middleware where the strictest analyzers apply.
func inInternal(rel string) bool {
	return rel == "internal" || strings.HasPrefix(rel, "internal/")
}

// underAny reports whether rel equals or lives under one of the prefixes.
func underAny(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// eachSourceFile visits the package's files, optionally skipping tests.
func eachSourceFile(pkg *Package, includeTests bool, fn func(f *File)) {
	for _, f := range pkg.Files {
		if f.Test && !includeTests {
			continue
		}
		fn(f)
	}
}

// importLocalName returns the identifier by which the import path is
// referenced in f: the declared alias, else the path's base name. The
// second result is false when the file does not import path (or imports
// it blank or with a dot, which selector-based analyzers cannot track).
func importLocalName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			n := imp.Name.Name
			if n == "_" || n == "." {
				return "", false
			}
			return n, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}
