package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// TypedPackage is one module package after type checking. Only non-test
// files participate: the typed tier reasons about the production lock
// graph and dataflow, and test files routinely hold locks or read wall
// clocks in ways that are fine in a test harness.
type TypedPackage struct {
	Pkg   *Package
	Types *types.Package
	Info  *types.Info
	Files []*ast.File // non-test files, in Pkg.Files order
}

// relPos rewrites a token position to a module-relative file path, so
// typed findings match the syntactic tier's stable path convention.
func (tp *TypedPackage) relPos(fset *token.FileSet, pos token.Pos) (file string, line, col int) {
	p := fset.Position(pos)
	return tp.Pkg.relFile(p.Filename), p.Line, p.Column
}

// TypedModule is the whole module after type checking: shared FileSet,
// one TypedPackage per module package that has non-test files, and the
// lazily computed dataflow facts shared by the typed analyzers.
type TypedModule struct {
	Mod  *Module
	Fset *token.FileSet

	ByPath map[string]*TypedPackage
	List   []*TypedPackage // sorted by import path

	factsOnce sync.Once
	facts     *lockFacts
	factsErr  error
}

// relPosOf locates pos in whichever package owns the file, falling back
// to a root-relative path. Typed analyzers report across package
// boundaries (a lock acquired in engine, held into taskq), so position
// rendering cannot assume the reporting package owns the file.
func (tm *TypedModule) relPosOf(pos token.Pos) (file string, line, col int) {
	p := tm.Fset.Position(pos)
	file = p.Filename
	if rel, ok := strings.CutPrefix(file, tm.Mod.Root+"/"); ok {
		file = rel
	}
	return file, p.Line, p.Column
}

// typeLoader type-checks module packages on demand, recursively, from
// the ASTs LoadModule already parsed. Module-internal imports resolve
// through the loader itself; everything else (the standard library)
// resolves through the source importer, which compiles stdlib packages
// from source — no export data, no toolchain invocation, stdlib-only.
type typeLoader struct {
	mod  *Module
	fset *token.FileSet
	std  types.Importer

	pkgs    map[string]*TypedPackage
	loading map[string]bool
	errs    []error
}

func (l *typeLoader) Import(path string) (*types.Package, error) {
	if path == l.mod.Path || strings.HasPrefix(path, l.mod.Path+"/") {
		tp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if tp == nil {
			return nil, fmt.Errorf("lint: no buildable package %q in module", path)
		}
		return tp.Types, nil
	}
	return l.std.Import(path)
}

func (l *typeLoader) load(path string) (*TypedPackage, error) {
	if tp, ok := l.pkgs[path]; ok {
		return tp, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	var pkg *Package
	for _, p := range l.mod.Packages {
		if p.Path == path {
			pkg = p
			break
		}
	}
	if pkg == nil {
		l.pkgs[path] = nil
		return nil, nil
	}
	var files []*ast.File
	for _, f := range pkg.Files {
		if !f.Test {
			files = append(files, f.AST)
		}
	}
	if len(files) == 0 {
		l.pkgs[path] = nil // test-only directory: no production compile unit
		return nil, nil
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			l.errs = append(l.errs, err)
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	tp := &TypedPackage{Pkg: pkg, Types: tpkg, Info: info, Files: files}
	l.pkgs[path] = tp
	return tp, nil
}

// TypeCheck type-checks every package of mod and returns the typed view.
// A module that does not compile is a hard error: the typed analyzers
// would otherwise reason from partial type information and report
// nonsense.
func TypeCheck(mod *Module) (*TypedModule, error) {
	l := &typeLoader{
		mod:     mod,
		fset:    mod.Fset,
		std:     importer.ForCompiler(mod.Fset, "source", nil),
		pkgs:    make(map[string]*TypedPackage),
		loading: make(map[string]bool),
	}
	for _, pkg := range mod.Packages {
		if _, err := l.load(pkg.Path); err != nil {
			return nil, err
		}
	}
	if len(l.errs) > 0 {
		max := len(l.errs)
		if max > 5 {
			max = 5
		}
		msgs := make([]string, 0, max)
		for _, e := range l.errs[:max] {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type check failed (%d errors):\n  %s",
			len(l.errs), strings.Join(msgs, "\n  "))
	}
	tm := &TypedModule{Mod: mod, Fset: mod.Fset, ByPath: make(map[string]*TypedPackage)}
	for path, tp := range l.pkgs {
		if tp == nil {
			continue
		}
		tm.ByPath[path] = tp
		tm.List = append(tm.List, tp)
	}
	sort.Slice(tm.List, func(i, j int) bool { return tm.List[i].Pkg.Path < tm.List[j].Pkg.Path })
	return tm, nil
}

// lockFactsFor computes (once) the shared dataflow facts every typed
// analyzer consumes: call graph, per-function CFGs, and the
// interprocedural held-lock solution.
func (tm *TypedModule) lockFactsFor() (*lockFacts, error) {
	tm.factsOnce.Do(func() {
		tm.facts, tm.factsErr = computeLockFacts(tm)
	})
	return tm.facts, tm.factsErr
}
