package lint

import "go/ast"

// SeededRand forbids the top-level math/rand functions, which draw from
// the package-global generator. Global state means two call sites share
// one stream: adding a draw anywhere reorders every draw after it, so a
// refactor in one package silently changes another package's
// "deterministic" results. All randomness must come from an explicitly
// seeded *rand.Rand threaded through configuration, the way
// sim.Engine.Rand and the matchers' Rand fields already do.
//
// Applies everywhere, tests included — a test that draws from the
// global stream is exactly as order-sensitive as production code.
type SeededRand struct{}

// forbiddenRandFuncs are the math/rand package-level draws. The
// constructors (New, NewSource, NewZipf) are the sanctioned road.
var forbiddenRandFuncs = map[string]bool{
	"Int":         true,
	"Intn":        true,
	"Int31":       true,
	"Int31n":      true,
	"Int63":       true,
	"Int63n":      true,
	"Uint32":      true,
	"Uint64":      true,
	"Float32":     true,
	"Float64":     true,
	"ExpFloat64":  true,
	"NormFloat64": true,
	"Perm":        true,
	"Shuffle":     true,
	"Read":        true,
	"Seed":        true,
}

func (SeededRand) Name() string { return "seededrand" }
func (SeededRand) Doc() string {
	return "forbid global math/rand draws; require an explicitly seeded *rand.Rand"
}

func (s SeededRand) Run(p *Pass) {
	eachSourceFile(p.Pkg, true, func(f *File) {
		randName, ok := importLocalName(f.AST, "math/rand")
		if !ok {
			return
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != randName || !forbiddenRandFuncs[sel.Sel.Name] {
				return true
			}
			p.Reportf(s.Name(), call.Pos(),
				"rand.%s draws from the shared global stream; use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
				sel.Sel.Name)
			return true
		})
	})
}
