package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// cgNode is one analyzable function body: a declared function/method or
// a function literal. The typed analyzers reason over nodes, never raw
// ASTs, so closures participate in the interprocedural dataflow exactly
// like named functions.
type cgNode struct {
	id   int
	fn   *types.Func   // nil for function literals
	decl *ast.FuncDecl // nil for function literals
	lit  *ast.FuncLit  // nil for declared functions
	pkg  *TypedPackage
	body *ast.BlockStmt
	name string // stable display name, e.g. "engine.(*Engine).TryBatch"

	cfg *funcCFG // built lazily by lockstate
}

// callGraph resolves call expressions to module function bodies. Three
// resolution strategies stack up:
//   - direct: package functions, concrete methods, called literals;
//   - CHA: interface method calls dispatch to every module type that
//     implements the interface (class-hierarchy analysis);
//   - func fields: a call through a func-typed struct field (the
//     engine.Hooks pattern) resolves to every value ever stored into
//     that field anywhere in the module.
type callGraph struct {
	tm     *TypedModule
	nodes  []*cgNode
	byFunc map[*types.Func]*cgNode
	byLit  map[*ast.FuncLit]*cgNode

	fieldFuncs map[*types.Var][]*cgNode // func-typed field -> stored targets
	named      []namedInPkg             // all module named types, for CHA
}

type namedInPkg struct {
	n  *types.Named
	tp *TypedPackage
}

func buildCallGraph(tm *TypedModule) *callGraph {
	g := &callGraph{
		tm:         tm,
		byFunc:     make(map[*types.Func]*cgNode),
		byLit:      make(map[*ast.FuncLit]*cgNode),
		fieldFuncs: make(map[*types.Var][]*cgNode),
	}
	for _, tp := range tm.List {
		scope := tp.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					g.named = append(g.named, namedInPkg{n: named, tp: tp})
				}
			}
		}
		for _, file := range tp.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					g.addDecl(tp, fd)
				}
			}
			tpLocal := tp
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					g.addLit(tpLocal, lit)
				}
				return true
			})
		}
	}
	// Second pass: index every value stored into a func-typed struct
	// field, module-wide. This is what connects e.hooks.Deliver(...) in
	// the engine back to core.Server.deliver.
	for _, tp := range tm.List {
		for _, file := range tp.Files {
			g.indexFieldStores(tp, file)
		}
	}
	return g
}

func (g *callGraph) addDecl(tp *TypedPackage, fd *ast.FuncDecl) {
	fn, _ := tp.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	node := &cgNode{
		id:   len(g.nodes),
		fn:   fn,
		decl: fd,
		pkg:  tp,
		body: fd.Body,
		name: funcDisplayName(fn),
	}
	g.nodes = append(g.nodes, node)
	g.byFunc[fn] = node
}

func (g *callGraph) addLit(tp *TypedPackage, lit *ast.FuncLit) {
	if g.byLit[lit] != nil {
		return
	}
	file, line, _ := tp.relPos(g.tm.Fset, lit.Pos())
	node := &cgNode{
		id:   len(g.nodes),
		lit:  lit,
		pkg:  tp,
		body: lit.Body,
		name: fmt.Sprintf("func@%s:%d", file, line),
	}
	g.nodes = append(g.nodes, node)
	g.byLit[lit] = node
}

func funcDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = fmt.Sprintf("(%s).%s", types.TypeString(sig.Recv().Type(), shortQualifier), name)
	}
	if pkg := fn.Pkg(); pkg != nil {
		name = pkg.Name() + "." + name
	}
	return name
}

func shortQualifier(p *types.Package) string { return p.Name() }

// nodeFor maps a types.Func to its body node, normalizing generic
// instantiations back to their declaration.
func (g *callGraph) nodeFor(fn *types.Func) *cgNode {
	if fn == nil {
		return nil
	}
	return g.byFunc[fn.Origin()]
}

// indexFieldStores records composite-literal entries and assignments
// that store a resolvable function value into a struct field.
func (g *callGraph) indexFieldStores(tp *TypedPackage, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				field, ok := tp.Info.Uses[key].(*types.Var)
				if !ok || !field.IsField() {
					continue
				}
				g.recordFieldStore(tp, field, kv.Value)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s := tp.Info.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					continue
				}
				field, ok := s.Obj().(*types.Var)
				if !ok {
					continue
				}
				g.recordFieldStore(tp, field, n.Rhs[i])
			}
		}
		return true
	})
}

func (g *callGraph) recordFieldStore(tp *TypedPackage, field *types.Var, value ast.Expr) {
	if _, ok := field.Type().Underlying().(*types.Signature); !ok {
		return
	}
	field = field.Origin()
	for _, t := range g.funcValueTargets(tp, value) {
		g.fieldFuncs[field] = append(g.fieldFuncs[field], t)
	}
}

// funcValueTargets resolves an expression used as a function value to
// the module bodies it can denote: a literal, a package function, or a
// method value.
func (g *callGraph) funcValueTargets(tp *TypedPackage, expr ast.Expr) []*cgNode {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		if n := g.byLit[e]; n != nil {
			return []*cgNode{n}
		}
	case *ast.Ident:
		if fn, ok := tp.Info.Uses[e].(*types.Func); ok {
			if n := g.nodeFor(fn); n != nil {
				return []*cgNode{n}
			}
		}
	case *ast.SelectorExpr:
		if s := tp.Info.Selections[e]; s != nil {
			switch s.Kind() {
			case types.MethodVal:
				if fn, ok := s.Obj().(*types.Func); ok {
					if n := g.nodeFor(fn); n != nil {
						return []*cgNode{n}
					}
				}
			case types.FieldVal:
				if field, ok := s.Obj().(*types.Var); ok {
					return g.fieldFuncs[field.Origin()]
				}
			}
		} else if fn, ok := tp.Info.Uses[e.Sel].(*types.Func); ok {
			if n := g.nodeFor(fn); n != nil {
				return []*cgNode{n}
			}
		}
	}
	return nil
}

// calleeFunc returns the static callee object of a call, if any —
// including interface methods and stdlib functions that have no module
// body. Analyzers use it to classify the callee; resolveCall to find
// bodies.
func calleeFunc(tp *TypedPackage, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := tp.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if s := tp.Info.Selections[fun]; s != nil {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := tp.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeField returns the struct field a call dispatches through, when
// the call is through a func-typed field (e.g. e.hooks.Deliver(a)),
// along with the named struct type owning the field.
func calleeField(tp *TypedPackage, call *ast.CallExpr) (*types.Var, *types.Named) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s := tp.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil, nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil
	}
	return field.Origin(), derefNamed(s.Recv())
}

// resolveCall returns every module function body a call may reach.
func (g *callGraph) resolveCall(tp *TypedPackage, call *ast.CallExpr) []*cgNode {
	fun := ast.Unparen(call.Fun)
	// A conversion T(x) parses as a call; skip it.
	if tv, ok := tp.Info.Types[fun]; ok && tv.IsType() {
		return nil
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		if n := g.byLit[fun]; n != nil {
			return []*cgNode{n}
		}
		return nil
	case *ast.Ident:
		if fn, ok := tp.Info.Uses[fun].(*types.Func); ok {
			if n := g.nodeFor(fn); n != nil {
				return []*cgNode{n}
			}
		}
		return nil
	case *ast.SelectorExpr:
		s := tp.Info.Selections[fun]
		if s == nil {
			// Package-qualified call pkg.Func(...).
			if fn, ok := tp.Info.Uses[fun.Sel].(*types.Func); ok {
				if n := g.nodeFor(fn); n != nil {
					return []*cgNode{n}
				}
			}
			return nil
		}
		switch s.Kind() {
		case types.MethodVal:
			fn, ok := s.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
				return g.implementersOf(iface, fn.Name())
			}
			if n := g.nodeFor(fn); n != nil {
				return []*cgNode{n}
			}
		case types.FieldVal:
			if field, ok := s.Obj().(*types.Var); ok {
				return g.fieldFuncs[field.Origin()]
			}
		}
	}
	return nil
}

// implementersOf is the CHA step: every module method m on a named type
// T (or *T) implementing iface, with a body in the module.
func (g *callGraph) implementersOf(iface *types.Interface, method string) []*cgNode {
	var out []*cgNode
	seen := make(map[*cgNode]bool)
	for _, ni := range g.named {
		if _, ok := ni.n.Underlying().(*types.Interface); ok {
			continue
		}
		ptr := types.NewPointer(ni.n)
		if !types.Implements(ni.n, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, ni.n.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n := g.nodeFor(fn); n != nil && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
