package lint

import "testing"

// TestDirectiveText pins the directive grammar: the comment must start
// with exactly //lint:ignore followed by whitespace (or nothing).
func TestDirectiveText(t *testing.T) {
	cases := []struct {
		comment string
		payload string
		ok      bool
	}{
		{"//lint:ignore clockdiscipline reason here", " clockdiscipline reason here", true},
		{"//lint:ignore * any analyzer", " * any analyzer", true},
		{"//lint:ignore", "", true}, // malformed, but recognized as a directive
		{"//lint:ignoreXYZ not a directive", "", false},
		{"// lint:ignore spaced out", "", false},
		{"//lint:file-ignore other grammar", "", false},
		{"// plain comment", "", false},
	}
	for _, tc := range cases {
		payload, ok := directiveText(tc.comment)
		if ok != tc.ok || (ok && payload != tc.payload) {
			t.Errorf("directiveText(%q) = %q, %v; want %q, %v",
				tc.comment, payload, ok, tc.payload, tc.ok)
		}
	}
}

// TestSuppressionCoverage exercises covers() line arithmetic directly:
// same line and line-above suppress, two lines above does not, and the
// analyzer name must match unless it is the wildcard.
func TestSuppressionCoverage(t *testing.T) {
	mk := func(names ...string) *directive {
		return &directive{file: "a.go", names: names, used: make(map[string]bool)}
	}
	set := &suppressionSet{byFileLine: map[string]map[int][]*directive{
		"a.go": {10: {mk("clockdiscipline")}, 20: {mk("*")}},
	}}
	cases := []struct {
		finding Finding
		want    bool
	}{
		{Finding{File: "a.go", Line: 10, Analyzer: "clockdiscipline"}, true},  // same line
		{Finding{File: "a.go", Line: 11, Analyzer: "clockdiscipline"}, true},  // line above
		{Finding{File: "a.go", Line: 12, Analyzer: "clockdiscipline"}, false}, // too far
		{Finding{File: "a.go", Line: 11, Analyzer: "seededrand"}, false},      // wrong analyzer
		{Finding{File: "a.go", Line: 21, Analyzer: "seededrand"}, true},       // wildcard
		{Finding{File: "b.go", Line: 10, Analyzer: "clockdiscipline"}, false}, // wrong file
	}
	for _, tc := range cases {
		if got := set.covers(tc.finding); got != tc.want {
			t.Errorf("covers(%+v) = %v, want %v", tc.finding, got, tc.want)
		}
	}
}
