package lint

import "go/ast"

// Index is the module-wide signature table: for every package-level
// function declared in this module, whether any of its results is an
// error. It is what lets errdrop work cross-package without
// type-checking against compiled export data — the whole module's
// source is already in memory, so the declarations are authoritative.
//
// Methods are deliberately excluded: resolving a receiver's type
// syntactically is guesswork (the same method name can return error on
// one type and nothing on another), and a determinism linter must not
// produce nondeterministic confidence.
type Index struct {
	// returnsError maps import path → function name → true when the
	// function's results include an error.
	returnsError map[string]map[string]bool
}

// FuncReturnsError reports whether the package-level function name in
// the package with the given import path is declared in this module
// with an error result.
func (ix *Index) FuncReturnsError(pkgPath, name string) bool {
	if ix == nil {
		return false
	}
	return ix.returnsError[pkgPath][name]
}

func buildIndex(mod *Module) *Index {
	ix := &Index{returnsError: make(map[string]map[string]bool)}
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv != nil || fn.Type.Results == nil {
					continue
				}
				if !resultsIncludeError(fn.Type.Results) {
					continue
				}
				m := ix.returnsError[pkg.Path]
				if m == nil {
					m = make(map[string]bool)
					ix.returnsError[pkg.Path] = m
				}
				m[fn.Name.Name] = true
			}
		}
	}
	return ix
}

func resultsIncludeError(results *ast.FieldList) bool {
	for _, field := range results.List {
		if id, ok := field.Type.(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}
