package lint

import "go/types"

// HookReentrancy proves that hook callbacks — code the engine does not
// own — are never invoked while a module mutex may be held. A hook that
// runs under engine.Engine.batchMu can call back into the engine (core's
// Deliver does) and deadlock, or simply hold the scheduler hostage for
// the duration of arbitrary user code. The check is interprocedural: a
// helper that fires a hook inherits its callers' held sets through the
// lock-state entry solution.
//
// Hook call sites are recognized three ways:
//   - a call through a func-typed field of a configured struct type
//     (engine.Hooks.Deliver and friends);
//   - a call to a configured (interface) method (metrics collector
//     callbacks like Exposer.ExposeMetric);
//   - a call through a configured named func type (metrics.GaugeFunc).
type HookReentrancy struct {
	// FieldStructs names struct types (as "pkgbase.Type") whose func
	// fields are all hooks.
	FieldStructs []string
	// Methods names methods (as "pkgbase.Type.Method") that are hook
	// invocations, matched against the static callee.
	Methods []string
	// FuncTypes names named function types (as "pkgbase.Type") whose
	// invocation is a hook call.
	FuncTypes []string
}

// NewHookReentrancy returns the analyzer configured for REACT's hook
// surfaces. The type-name matching uses package base names, so fixture
// modules that mirror the layout (internal/engine, internal/metrics)
// exercise the same configuration.
func NewHookReentrancy() *HookReentrancy {
	return &HookReentrancy{
		FieldStructs: []string{"engine.Hooks"},
		Methods:      []string{"metrics.Exposer.ExposeMetric"},
		FuncTypes:    []string{"metrics.GaugeFunc"},
	}
}

func (*HookReentrancy) Name() string { return "hookreentrancy" }
func (*HookReentrancy) Doc() string {
	return "prove engine.Hooks and metrics collector callbacks never fire with a mutex held"
}

func (h *HookReentrancy) RunTyped(p *TypedPass) {
	lf, err := p.TM.lockFactsFor()
	if err != nil {
		return
	}
	fieldStructs := toSet(h.FieldStructs)
	methods := toSet(h.Methods)
	funcTypes := toSet(h.FuncTypes)

	for _, n := range lf.graph.nodes {
		ff := lf.perFunc[n]
		if ff == nil {
			continue
		}
		for _, cf := range ff.calls {
			label := ""
			switch {
			case cf.fieldOwner != nil && fieldStructs[typeKey(cf.fieldOwner)]:
				label = typeKey(cf.fieldOwner) + "." + cf.field.Name()
			case cf.fn != nil && methods[methodKey(cf.fn)]:
				label = methodKey(cf.fn)
			case cf.funType != nil && funcTypes[typeKey(cf.funType)]:
				label = typeKey(cf.funType)
			default:
				continue
			}
			held := lf.finalHeld(n, cf.localHeld)
			if len(held) == 0 {
				continue
			}
			p.Reportf("hookreentrancy", cf.pos,
				"hook %s invoked in %s with lock(s) held: %s",
				label, n.name, lf.heldDescription(n, held, cf.localHeld))
		}
	}
}

func toSet(names []string) map[string]bool {
	out := make(map[string]bool, len(names))
	for _, n := range names {
		out[n] = true
	}
	return out
}

// methodKey renders a method callee as "pkgbase.Recv.Name".
func methodKey(fn *types.Func) string {
	recv := receiverTypeName(fn)
	if recv == "" || fn.Pkg() == nil {
		return ""
	}
	return pathBase(fn.Pkg().Path()) + "." + recv + "." + fn.Name()
}
