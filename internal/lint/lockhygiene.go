package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHygiene checks two things on every function in the module:
//
//  1. Every mu.Lock()/mu.RLock() is matched: either a defer
//     mu.Unlock()/mu.RUnlock() exists in the same function, or a plain
//     unlock follows with no return statement between the lock and that
//     unlock. A return inside the critical section is how the server
//     loops deadlock under churn — the exact bug class the race
//     detector only catches when the schedule cooperates.
//  2. sync.Mutex / sync.RWMutex never cross a function boundary by
//     value (parameters or results); a copied mutex guards nothing.
//
// The check is syntactic: lock receivers are compared by their printed
// expression (s.mu, reg.lock, ...), which is exact for the field- and
// variable-shaped receivers used throughout this module.
type LockHygiene struct{}

func (LockHygiene) Name() string { return "lockhygiene" }
func (LockHygiene) Doc() string {
	return "require defer-paired or return-free Lock/Unlock and forbid mutexes passed by value"
}

type lockSite struct {
	key  string // printed receiver expression
	op   string // "Lock" or "RLock"
	pos  token.Pos
	node ast.Node
}

var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func (l LockHygiene) Run(p *Pass) {
	eachSourceFile(p.Pkg, true, func(f *File) {
		syncName, hasSync := importLocalName(f.AST, "sync")
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if hasSync {
				l.checkValueMutex(p, fn.Type, syncName)
			}
			if fn.Body != nil {
				l.checkBody(p, fn.Body)
			}
		}
	})
}

// checkValueMutex flags sync.Mutex / sync.RWMutex appearing by value in
// a signature.
func (l LockHygiene) checkValueMutex(p *Pass, ft *ast.FuncType, syncName string) {
	check := func(list *ast.FieldList) {
		if list == nil {
			return
		}
		for _, field := range list.List {
			sel, ok := field.Type.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != syncName {
				continue
			}
			if sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex" {
				p.Reportf(l.Name(), field.Pos(),
					"sync.%s passed by value; a copied mutex guards nothing — pass a pointer",
					sel.Sel.Name)
			}
		}
	}
	check(ft.Params)
	check(ft.Results)
}

// checkBody pairs every lock in the function (including nested
// literals) with its unlock.
func (l LockHygiene) checkBody(p *Pass, body *ast.BlockStmt) {
	var (
		locks    []lockSite
		plain    = map[string][]token.Pos{} // key+op → unlock positions
		deferred = map[string]bool{}        // key+op present as defer
		returns  []token.Pos
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.ExprStmt:
			if key, op, ok := lockCall(n.X); ok {
				switch op {
				case "Lock", "RLock":
					locks = append(locks, lockSite{key: key, op: op, pos: n.Pos(), node: n})
				case "Unlock", "RUnlock":
					plain[key+"."+op] = append(plain[key+"."+op], n.Pos())
				}
			}
		case *ast.DeferStmt:
			if key, op, ok := lockCall(n.Call); ok && (op == "Unlock" || op == "RUnlock") {
				deferred[key+"."+op] = true
			}
		}
		return true
	})

	for _, lk := range locks {
		want := lk.key + "." + unlockFor[lk.op]
		if deferred[want] {
			continue
		}
		unlocks := plain[want]
		first := token.Pos(-1)
		for _, up := range unlocks {
			if up > lk.pos && (first < 0 || up < first) {
				first = up
			}
		}
		if first < 0 {
			p.Reportf(l.Name(), lk.pos,
				"%s.%s() has no matching %s in this function; add defer %s.%s()",
				lk.key, lk.op, unlockFor[lk.op], lk.key, unlockFor[lk.op])
			continue
		}
		for _, rp := range returns {
			if rp > lk.pos && rp < first {
				p.Reportf(l.Name(), lk.pos,
					"return between %s.%s() and %s.%s() leaves the lock held on that path; use defer",
					lk.key, lk.op, lk.key, unlockFor[lk.op])
				break
			}
		}
	}
}

// lockCall decomposes expr as a no-argument method call recv.Op() where
// Op is one of the mutex operations, returning the printed receiver.
func lockCall(expr ast.Expr) (key, op string, ok bool) {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}
