package lint_test

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"react/internal/lint"
)

var updateGolden = flag.Bool("update", false, "rewrite the JSON golden file")

// TestJSONGolden pins the -json output schema byte-for-byte. The golden
// file is the contract CI tooling parses; regenerate deliberately with
//
//	go test ./internal/lint -run JSONGolden -update
func TestJSONGolden(t *testing.T) {
	mod, runner, findings := loadFixtureForGolden(t)
	var buf bytes.Buffer
	if err := lint.NewReport(mod, "all", runner, findings).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	const goldenPath = "testdata/golden.json"
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output drifted from golden file\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestJSONEmptyFindings ensures a clean run marshals findings as an
// empty array, never null — consumers index into it unconditionally.
func TestJSONEmptyFindings(t *testing.T) {
	mod, runner, _ := loadFixtureForGolden(t)
	var buf bytes.Buffer
	if err := lint.NewReport(mod, "all", runner, nil).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"findings": []`)) {
		t.Errorf("empty report does not marshal findings as []:\n%s", buf.Bytes())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"count": 0`)) {
		t.Errorf("empty report count != 0:\n%s", buf.Bytes())
	}
}

func loadFixtureForGolden(t *testing.T) (*lint.Module, *lint.Runner, []lint.Finding) {
	t.Helper()
	mod, err := lint.LoadModule("testdata/module")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	// The golden run exercises the full default CLI configuration: both
	// tiers plus stale-suppression detection.
	runner := &lint.Runner{Typed: lint.DefaultTypedAnalyzers(), StaleCheck: true}
	return mod, runner, runner.Run(mod)
}
