package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed source file.
type File struct {
	Name string // absolute path
	AST  *ast.File
	Test bool // *_test.go
}

// Package is every .go file in one directory (including external test
// packages — analyzers care about files, not package identity).
type Package struct {
	Dir     string // absolute directory
	RelPath string // module-relative directory ("" for the module root)
	Path    string // import path (module path + "/" + RelPath)
	Fset    *token.FileSet
	Files   []*File

	modRoot string
}

// relFile rewrites an absolute filename to a module-relative one so
// findings are stable across checkouts.
func (p *Package) relFile(name string) string {
	if rel, err := filepath.Rel(p.modRoot, name); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// Module is a fully loaded module tree plus the cross-package index.
type Module struct {
	Root     string // directory containing go.mod
	Path     string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package
	Index    *Index
}

// LoadModule walks the module rooted at root (the directory containing
// go.mod), parses every package directory, and builds the signature
// index. Directories named testdata or vendor, and hidden or
// underscore-prefixed directories, are skipped — the same pruning rule
// the go tool applies — so lint fixtures never leak into a real run.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	byDir := make(map[string]*Package)
	walkErr := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path == root {
				return nil
			}
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			return nil
		}
		// Respect build constraints for the host platform, like the
		// compiler does: without this, both halves of a //go:build
		// platform split reach the typed tier and every shared symbol
		// looks redeclared.
		if match, err := build.Default.MatchFile(filepath.Dir(path), name); err != nil || !match {
			return err
		}
		ast, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		dir := filepath.Dir(path)
		pkg := byDir[dir]
		if pkg == nil {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			rel = filepath.ToSlash(rel)
			if rel == "." {
				rel = ""
			}
			impPath := modPath
			if rel != "" {
				impPath = modPath + "/" + rel
			}
			pkg = &Package{Dir: dir, RelPath: rel, Path: impPath, Fset: fset, modRoot: root}
			byDir[dir] = pkg
		}
		pkg.Files = append(pkg.Files, &File{
			Name: path,
			AST:  ast,
			Test: strings.HasSuffix(name, "_test.go"),
		})
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}

	mod := &Module{Root: root, Path: modPath, Fset: fset}
	for _, pkg := range byDir {
		sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Name < pkg.Files[j].Name })
		mod.Packages = append(mod.Packages, pkg)
	}
	sort.Slice(mod.Packages, func(i, j int) bool { return mod.Packages[i].Dir < mod.Packages[j].Dir })
	mod.Index = buildIndex(mod)
	return mod, nil
}

// modulePath extracts the module path from a go.mod file without
// depending on golang.org/x/mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
