package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ClockTaint tracks wall-clock and unseeded-RNG values interprocedurally
// from their sources (time.Now/Since/Until/After/NewTicker..., global
// math/rand draws) into scheduling decision sinks: calls into the
// engine/sim/schedule packages, composite literals of their types, and
// assignments into their struct fields. The syntactic clockdiscipline
// analyzer catches a direct time.Now() in a swept package; this one
// catches the laundered version — a timestamp minted in cmd/ or wire/
// and handed across the boundary, which is exactly the flow that breaks
// byte-identical figs 5–10 replays.
//
// Taint propagates through function RETURNS (a function whose result
// derives from a source taints its callers) and through parameters only
// at the call site (a summary records whether params flow to results).
// Parameters are never assumed tainted inside a callee: that keeps a
// correctly seeded package (loadgen with a pinned -seed) from lighting
// up just because one caller defaults the seed to the wall clock — the
// finding lands at that caller's call site instead.
type ClockTaint struct {
	// SinkPrefixes are module-relative package prefixes whose functions,
	// types, and fields are decision sinks.
	SinkPrefixes []string
	// AllowPrefixes are packages exempt from reporting (examples are
	// end-user code wiring real deadlines on purpose).
	AllowPrefixes []string
	// SourceAllowPrefixes are packages where reading the wall clock is
	// sanctioned (the clock abstraction itself).
	SourceAllowPrefixes []string
}

// NewClockTaint returns the analyzer configured for REACT's layout.
func NewClockTaint() *ClockTaint {
	return &ClockTaint{
		SinkPrefixes: []string{
			"internal/engine", "internal/schedule", "internal/dynassign",
			"internal/taskq", "internal/sim", "internal/experiments",
			"internal/matching", "internal/core", "internal/federation",
			"internal/loadgen", "internal/profile", "internal/crowd",
			"internal/workload",
		},
		AllowPrefixes:       []string{"examples"},
		SourceAllowPrefixes: []string{"internal/clock"},
	}
}

func (*ClockTaint) Name() string { return "clocktaint" }
func (*ClockTaint) Doc() string {
	return "interprocedural taint from wall-clock/unseeded-RNG sources into scheduling decision sinks"
}

var timeSourceFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

var randDrawFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Uint32": true, "Uint64": true, "Float32": true,
	"Float64": true, "ExpFloat64": true, "NormFloat64": true, "Perm": true,
}

type taintSummary struct {
	intrinsic  bool // result derives from a source regardless of inputs
	propagates bool // tainted arguments flow to the result
}

type taintState struct {
	a   *ClockTaint
	tm  *TypedModule
	g   *callGraph
	sup *suppressionSet // nil outside a Runner-driven pass

	summaries map[*types.Func]*taintSummary
	litSrc    map[*ast.FuncLit]bool // literal body reads a source directly
	envs      map[*cgNode]map[types.Object]bool
}

func (a *ClockTaint) RunTyped(p *TypedPass) {
	lf, err := p.TM.lockFactsFor()
	if err != nil {
		return
	}
	ts := &taintState{
		a: a, tm: p.TM, g: lf.graph, sup: p.sup,
		summaries: make(map[*types.Func]*taintSummary),
		litSrc:    make(map[*ast.FuncLit]bool),
		envs:      make(map[*cgNode]map[types.Object]bool),
	}
	for _, n := range ts.g.nodes {
		if n.fn != nil {
			ts.summaries[n.fn] = &taintSummary{}
		}
		if n.lit != nil {
			ts.litSrc[n.lit] = ts.litReadsSource(n)
		}
	}
	// Summary fixpoint: monotone in both bits, so iterate to stability.
	for round := 0; round < 32; round++ {
		changed := false
		for _, n := range ts.g.nodes {
			if n.fn == nil || n.decl == nil {
				continue
			}
			s := ts.summaries[n.fn]
			if !s.intrinsic {
				if ret, _ := ts.evalFunc(n, false); ret {
					s.intrinsic = true
					changed = true
				}
			}
			if !s.propagates {
				if ret, _ := ts.evalFunc(n, true); ret {
					s.propagates = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Final pass: stable environments for the sink scan.
	for _, n := range ts.g.nodes {
		if n.decl == nil {
			continue
		}
		_, env := ts.evalFunc(n, false)
		ts.envs[n] = env
	}
	ts.scanSinks(p)
}

// litReadsSource is the cheap classification used when a call resolves
// to a function literal: does its body read a source directly?
func (ts *taintState) litReadsSource(n *cgNode) bool {
	found := false
	ast.Inspect(n.lit.Body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok && ts.sourceCall(n.pkg, call) {
			found = true
		}
		return !found
	})
	return found
}

// sourceCall reports whether the call reads a wall-clock/unseeded-RNG
// source. A //lint:ignore clocktaint directive on the call's line (or
// the line above) sanctions the read — a sanctioned source does not
// taint its downstream flows, so an intentional wall measurement (e.g.
// schedule.Run's Elapsed accounting) does not cascade through every
// caller. Consulting the directive marks it used for staleness.
func (ts *taintState) sourceCall(tp *TypedPackage, call *ast.CallExpr) bool {
	fn := calleeFunc(tp, call)
	if fn == nil || !ts.isSource(tp, fn) {
		return false
	}
	return !ts.sanctioned(call.Pos())
}

func (ts *taintState) sanctioned(pos token.Pos) bool {
	if ts.sup == nil {
		return false
	}
	file, line, _ := ts.tm.relPosOf(pos)
	return ts.sup.covers(Finding{File: file, Line: line, Analyzer: "clocktaint"})
}

func (ts *taintState) isSource(tp *TypedPackage, fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	// Only package-level functions are sources: time.Time.After (a
	// method on an arbitrary timestamp) must not match time.After (a
	// wall-clock channel).
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	switch pkg.Path() {
	case "time":
		return timeSourceFuncs[fn.Name()] &&
			!underAny(tp.Pkg.RelPath, ts.a.SourceAllowPrefixes)
	case "math/rand":
		return randDrawFuncs[fn.Name()]
	}
	return false
}

// evalFunc runs the flow-insensitive taint environment for one declared
// function to a local fixpoint. Nested function literals share the
// environment (closure semantics) but their return statements do not
// count as the outer function's returns.
func (ts *taintState) evalFunc(n *cgNode, paramsTainted bool) (returns bool, env map[types.Object]bool) {
	env = make(map[types.Object]bool)
	tp := n.pkg
	var resultObjs []types.Object
	if ft := n.decl.Type; ft != nil {
		seed := func(fl *ast.FieldList, taint bool, results bool) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if obj := tp.Info.Defs[name]; obj != nil {
						if taint {
							env[obj] = true
						}
						if results {
							resultObjs = append(resultObjs, obj)
						}
					}
				}
			}
		}
		seed(n.decl.Recv, paramsTainted, false)
		seed(ft.Params, paramsTainted, false)
		seed(ft.Results, false, true)
	}
	for iter := 0; iter < 10; iter++ {
		w := &taintWalker{ts: ts, tp: tp, env: env}
		w.walkBody(n.body)
		returns = returns || w.returns
		if !w.changed {
			break
		}
	}
	if !returns {
		for _, obj := range resultObjs {
			if env[obj] {
				returns = true
			}
		}
	}
	return returns, env
}

type taintWalker struct {
	ts      *taintState
	tp      *TypedPackage
	env     map[types.Object]bool
	changed bool
	returns bool
}

func (w *taintWalker) walkBody(body *ast.BlockStmt) {
	litDepth := 0
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := top.(*ast.FuncLit); ok {
				litDepth--
			}
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.FuncLit:
			litDepth++
		case *ast.AssignStmt:
			w.assign(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, name := range n.Names {
				lhs[i] = name
			}
			if len(n.Values) > 0 {
				w.assign(lhs, n.Values)
			}
		case *ast.RangeStmt:
			if w.taintOf(n.X) {
				w.setLHS(n.Key, true)
				w.setLHS(n.Value, true)
			}
		case *ast.ReturnStmt:
			if litDepth == 0 {
				for _, res := range n.Results {
					if w.taintOf(res) {
						w.returns = true
					}
				}
			}
		}
		return true
	})
}

func (w *taintWalker) assign(lhs, rhs []ast.Expr) {
	if len(lhs) == len(rhs) {
		for i := range lhs {
			w.setLHS(lhs[i], w.taintOf(rhs[i]))
		}
		return
	}
	if len(rhs) == 1 { // multi-value: x, y := f() / m[k] / <-ch
		t := w.taintOf(rhs[0])
		for _, l := range lhs {
			w.setLHS(l, t)
		}
	}
}

func (w *taintWalker) setLHS(e ast.Expr, taint bool) {
	if e == nil || !taint {
		return
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return // field/index writes are handled by the sink scan
	}
	obj := w.tp.Info.Defs[id]
	if obj == nil {
		obj = w.tp.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if !w.env[obj] {
		w.env[obj] = true
		w.changed = true
	}
}

// taintOf evaluates whether an expression's value may derive from a
// wall-clock or unseeded-RNG source.
func (w *taintWalker) taintOf(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.tp.Info.Uses[e]
		if obj == nil {
			obj = w.tp.Info.Defs[e]
		}
		return obj != nil && w.env[obj]
	case *ast.CallExpr:
		return w.callTaint(e)
	case *ast.SelectorExpr:
		return w.taintOf(e.X) // field read off a tainted value
	case *ast.UnaryExpr:
		return w.taintOf(e.X) // includes <-ch on a tainted channel
	case *ast.BinaryExpr:
		return w.taintOf(e.X) || w.taintOf(e.Y)
	case *ast.StarExpr:
		return w.taintOf(e.X)
	case *ast.IndexExpr:
		return w.taintOf(e.X)
	case *ast.SliceExpr:
		return w.taintOf(e.X)
	case *ast.TypeAssertExpr:
		return w.taintOf(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if w.taintOf(kv.Value) {
					return true
				}
			} else if w.taintOf(elt) {
				return true
			}
		}
	}
	return false
}

func (w *taintWalker) callTaint(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := w.tp.Info.Types[fun]; ok && tv.IsType() { // conversion
		if len(call.Args) == 1 {
			return w.taintOf(call.Args[0])
		}
		return false
	}
	if w.ts.sourceCall(w.tp, call) {
		return true
	}
	argT := false
	for _, arg := range call.Args {
		if w.taintOf(arg) {
			argT = true
			break
		}
	}
	if !argT {
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if s := w.tp.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				argT = w.taintOf(sel.X) // method on a tainted receiver
			}
		}
	}
	targets := w.ts.g.resolveCall(w.tp, call)
	if len(targets) > 0 {
		for _, t := range targets {
			switch {
			case t.fn != nil:
				s := w.ts.summaries[t.fn]
				if s != nil && (s.intrinsic || (s.propagates && argT)) {
					return true
				}
			case t.lit != nil:
				if w.ts.litSrc[t.lit] || argT {
					return true
				}
			}
		}
		return false
	}
	// External or unresolvable callee: conservative passthrough.
	return argT
}

// ---------------------------------------------------------------------
// Sink scan

func (ts *taintState) scanSinks(p *TypedPass) {
	for _, n := range ts.g.nodes {
		if n.decl == nil {
			continue
		}
		if underAny(n.pkg.Pkg.RelPath, ts.a.AllowPrefixes) {
			continue
		}
		env := ts.envs[n]
		w := &taintWalker{ts: ts, tp: n.pkg, env: env}
		ast.Inspect(n.body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.CallExpr:
				ts.checkCallSink(p, w, node)
			case *ast.CompositeLit:
				ts.checkLitSink(p, w, node)
			case *ast.AssignStmt:
				ts.checkFieldSink(p, w, node)
			}
			return true
		})
	}
}

// relOfModulePkg maps an import path to its module-relative form; ok is
// false for non-module packages.
func (ts *taintState) relOfModulePkg(path string) (string, bool) {
	if path == ts.tm.Mod.Path {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, ts.tm.Mod.Path+"/"); ok {
		return rest, true
	}
	return "", false
}

func (ts *taintState) sinkPkgPath(path string) bool {
	rel, ok := ts.relOfModulePkg(path)
	return ok && underAny(rel, ts.a.SinkPrefixes)
}

func (ts *taintState) checkCallSink(p *TypedPass, w *taintWalker, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := w.tp.Info.Types[fun]; ok && tv.IsType() {
		return
	}
	fn := calleeFunc(w.tp, call)
	// Unseeded-RNG seeding from the wall clock is a sink wherever it
	// appears: the resulting stream is unreproducible by construction.
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" &&
		(fn.Name() == "NewSource" || fn.Name() == "Seed") {
		for _, arg := range call.Args {
			if w.taintOf(arg) {
				p.Reportf("clocktaint", call.Pos(),
					"RNG seeded from a wall-clock-derived value (rand.%s); a run cannot be replayed", fn.Name())
				return
			}
		}
		return
	}
	sink := ""
	if fn != nil && fn.Pkg() != nil && ts.sinkPkgPath(fn.Pkg().Path()) {
		sink = funcDisplayName(fn)
	}
	if sink == "" {
		for _, t := range ts.g.resolveCall(w.tp, call) {
			if underAny(t.pkg.Pkg.RelPath, ts.a.SinkPrefixes) {
				sink = t.name
				break
			}
		}
	}
	if sink == "" {
		return
	}
	for i, arg := range call.Args {
		if w.taintOf(arg) {
			p.Reportf("clocktaint", call.Pos(),
				"wall-clock/RNG-derived value flows into scheduling sink %s (argument %d)", sink, i+1)
			return
		}
	}
}

func (ts *taintState) checkLitSink(p *TypedPass, w *taintWalker, cl *ast.CompositeLit) {
	named := derefNamed(typeOf(w.tp, cl))
	if named == nil || named.Obj().Pkg() == nil || !ts.sinkPkgPath(named.Obj().Pkg().Path()) {
		return
	}
	for _, elt := range cl.Elts {
		v := elt
		field := ""
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = id.Name
			}
		}
		if w.taintOf(v) {
			p.Reportf("clocktaint", v.Pos(),
				"wall-clock/RNG-derived value stored in %s literal (field %s)", typeKey(named), field)
			return
		}
	}
}

func (ts *taintState) checkFieldSink(p *TypedPass, w *taintWalker, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		s := w.tp.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			continue
		}
		owner := derefNamed(s.Recv())
		if owner == nil || owner.Obj().Pkg() == nil || !ts.sinkPkgPath(owner.Obj().Pkg().Path()) {
			continue
		}
		if w.taintOf(as.Rhs[i]) {
			p.Reportf("clocktaint", as.Rhs[i].Pos(),
				"wall-clock/RNG-derived value assigned to %s.%s", typeKey(owner), s.Obj().Name())
		}
	}
}
