package lint

import (
	"go/ast"
	"strings"
)

// ErrDrop flags statements that call a package-level function of this
// module and silently discard its error result: a bare `pkg.Fn()` (or
// same-package `Fn()`) expression statement, or the same inside go /
// defer. An explicit `_ = pkg.Fn()` stays legal — it is greppable and
// states intent.
//
// The set of error-returning functions comes from the module-wide
// signature index, so the analyzer is exact for this module's own API
// without needing export data. Methods are out of scope (receiver types
// are not resolvable syntactically); the analyzer documents that
// narrowness rather than guessing.
type ErrDrop struct{}

func (ErrDrop) Name() string { return "errdrop" }
func (ErrDrop) Doc() string {
	return "flag bare calls that discard an error returned by a function in this module"
}

func (e ErrDrop) Run(p *Pass) {
	eachSourceFile(p.Pkg, true, func(f *File) {
		// Map local import names to module-internal import paths.
		modImports := make(map[string]string)
		for _, imp := range f.AST.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !strings.HasPrefix(path+"/", modulePrefix(p.Pkg)) {
				continue
			}
			if name, ok := importLocalName(f.AST, path); ok {
				modImports[name] = path
			}
		}
		check := func(call *ast.CallExpr) {
			pkgPath, fnName, ok := resolveCall(call, p.Pkg.Path, modImports)
			if !ok || !p.Index.FuncReturnsError(pkgPath, fnName) {
				return
			}
			p.Reportf(e.Name(), call.Pos(),
				"%s returns an error that is silently discarded; handle it or assign `_ =` to state intent",
				fnName)
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call)
				}
			case *ast.GoStmt:
				check(n.Call)
			case *ast.DeferStmt:
				check(n.Call)
			}
			return true
		})
	})
}

// modulePrefix returns the module path of the package's module with a
// trailing slash, for prefix-matching import paths.
func modulePrefix(pkg *Package) string {
	mod := pkg.Path
	if pkg.RelPath != "" {
		mod = strings.TrimSuffix(mod, "/"+pkg.RelPath)
	}
	return mod + "/"
}

// resolveCall maps a call expression to (import path, function name)
// when it targets a package-level function: a plain identifier resolves
// to the current package, pkg.Fn to a module-internal import.
func resolveCall(call *ast.CallExpr, selfPath string, modImports map[string]string) (string, string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return selfPath, fun.Name, true
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return "", "", false
		}
		if path, ok := modImports[id.Name]; ok {
			return path, fun.Sel.Name, true
		}
	}
	return "", "", false
}
