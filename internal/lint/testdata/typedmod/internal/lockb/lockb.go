// Package lockb is the negative control for lockorder: both locks are
// always taken in the same order, so the acquisition graph is acyclic.
// It also carries a deliberately stale suppression for the staleignore
// check.
package lockb

import "sync"

// Ordered acquires outer before inner everywhere.
type Ordered struct {
	outer sync.Mutex
	inner sync.Mutex
	n     int
}

// Both nests inner under outer.
func (o *Ordered) Both() {
	o.outer.Lock()
	defer o.outer.Unlock()
	o.inner.Lock()
	o.n++
	o.inner.Unlock()
}

// InnerOnly takes just the inner lock; no conflicting order exists.
func (o *Ordered) InnerOnly() {
	o.inner.Lock()
	defer o.inner.Unlock()
	o.n++
}

// Stale has no lockorder diagnostic, so the directive below must be
// reported by staleignore.
func (o *Ordered) Stale() int {
	//lint:ignore lockorder fixture: stale by construction, nothing to suppress here
	return o.n
}
