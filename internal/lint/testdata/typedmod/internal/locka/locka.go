// Package locka seeds a lock-order cycle: AB establishes a → b through
// an interprocedural call, BA establishes b → a directly. lockorder must
// report the cycle and a self-deadlock, and nothing else.
package locka

import "sync"

// Pair holds two mutexes acquired in conflicting orders.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// AB acquires a, then (via lockB) b: the a → b edge.
func (p *Pair) AB() {
	p.a.Lock()
	defer p.a.Unlock()
	p.lockB()
}

// lockB acquires b; its entry set inherits a from AB.
func (p *Pair) lockB() {
	p.b.Lock()
	defer p.b.Unlock()
	p.n++
}

// BA acquires b, then a: the b → a edge closing the cycle.
func (p *Pair) BA() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	p.n++
	p.a.Unlock()
}

// Reentrant re-acquires a lock already held by its caller: the
// self-deadlock case, attributed interprocedurally.
func (p *Pair) Reentrant() {
	p.a.Lock()
	defer p.a.Unlock()
	p.bump()
}

func (p *Pair) bump() {
	p.a.Lock()
	p.n++
	p.a.Unlock()
}
