// Package gateway is the clocktaint caller side: it mints wall-clock
// values outside the sink packages and hands them across the boundary
// into typedfix/internal/engine (a sink prefix). One flow per rule:
// sink-call argument, sink-literal field, wall-seeded RNG, plus the
// seeded negative and the sanctioned-source negative. The syntactic
// clockdiscipline findings on the raw reads are suppressed so the typed
// tier is what's under test.
package gateway

import (
	"math/rand"
	"time"

	"typedfix/internal/engine"
)

// Stamp launders a wall read through a local before the sink call.
func Stamp(e *engine.Engine) {
	//lint:ignore clockdiscipline fixture: raw read stays; the typed tier must catch the laundered flow below
	now := time.Now()
	e.Submit(now.UnixNano())
}

// Build stores a wall-derived value in a sink-package literal.
func Build() engine.Task {
	//lint:ignore clockdiscipline fixture: raw read stays; the typed tier must catch the literal-field flow
	return engine.Task{At: time.Now().UnixNano()}
}

// Reseed seeds an RNG from the clock: unreproducible by construction.
func Reseed() int64 {
	//lint:ignore clockdiscipline fixture: raw read stays; the typed tier must catch the wall-seeded RNG
	return rand.New(rand.NewSource(time.Now().UnixNano())).Int63()
}

// Seeded drives the same sink from a pinned seed: negative.
func Seeded(e *engine.Engine) {
	r := rand.New(rand.NewSource(1))
	e.Submit(r.Int63())
}

// Sanctioned documents an intentional wall read: the clocktaint
// suppression sanitizes the source itself, so the downstream sink call
// does not fire either.
func Sanctioned(e *engine.Engine) {
	//lint:ignore clockdiscipline,clocktaint fixture: sanctioned wall read; nothing downstream may fire
	now := time.Now()
	e.Submit(now.UnixNano())
}
