// Package block covers blockingunderlock: channel operations and sleeps
// with a mutex held (positives), the same operations after an explicit
// unlock or behind a select default (negatives), and a reasoned
// suppression.
package block

import (
	"sync"
	"time"
)

// Q pairs a mutex with a channel.
type Q struct {
	mu sync.Mutex
	ch chan int
}

// SendLocked blocks on a channel send with mu held.
func (q *Q) SendLocked(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v
}

// RecvLocked blocks on a receive with mu held.
func (q *Q) RecvLocked() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch
}

// SleepLocked holds mu across a sleep.
func (q *Q) SleepLocked() {
	q.mu.Lock()
	defer q.mu.Unlock()
	//lint:ignore clockdiscipline fixture: the raw sleep stays; the typed tier must catch the lock held across it
	time.Sleep(time.Millisecond)
}

// SendUnlocked releases mu before the send: negative (the explicit
// unlock kills the lock on this path).
func (q *Q) SendUnlocked(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v
}

// TryRecv polls behind a default arm: negative (never blocks).
func (q *Q) TryRecv() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.ch:
		return v, true
	default:
		return 0, false
	}
}

// SendSuppressed is SendLocked with a reasoned suppression.
func (q *Q) SendSuppressed(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//lint:ignore blockingunderlock fixture: documents the reasoned-suppression path
	q.ch <- v
}
