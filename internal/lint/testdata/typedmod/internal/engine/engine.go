// Package engine mirrors the real engine's hook surface so the
// hookreentrancy fixture exercises the same matching rules (a func field
// on a struct named engine.Hooks) the production sweep uses. It is also
// the clocktaint sink package: internal/engine is a sink prefix.
package engine

import "sync"

// Hooks is the callback surface; invoking any field with the engine's
// mutex held is the violation hookreentrancy proves absent.
type Hooks struct {
	Deliver  func(int) bool
	OnAssign func(int)
}

// Task is a sink type for the clocktaint literal-field case.
type Task struct {
	At int64
}

// Engine is a minimal lock-plus-hooks shape.
type Engine struct {
	mu    sync.Mutex
	n     int
	hooks Hooks
}

// Submit is a sink function: a tainted argument is a finding at the
// caller.
func (e *Engine) Submit(stamp int64) {
	e.mu.Lock()
	e.n = int(stamp)
	e.mu.Unlock()
}

// BadHook fires Deliver with mu held: the direct positive.
func (e *Engine) BadHook() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
	if e.hooks.Deliver != nil {
		e.hooks.Deliver(e.n)
	}
}

// GoodHook snapshots under the lock and fires after releasing it: the
// negative control (the early Unlock kills the lock on this path).
func (e *Engine) GoodHook() {
	e.mu.Lock()
	n := e.n
	e.mu.Unlock()
	if e.hooks.Deliver != nil {
		e.hooks.Deliver(n)
	}
}

// emit is lock-free in isolation; Indirect calls it with mu held, so the
// finding lands here with caller provenance: the interprocedural
// positive.
func (e *Engine) emit(n int) {
	if e.hooks.OnAssign != nil {
		e.hooks.OnAssign(n)
	}
}

// Indirect is the caller that poisons emit's entry set.
func (e *Engine) Indirect() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.emit(e.n)
}

// SuppressedHook is BadHook with a reasoned suppression: no finding, and
// the directive must not be reported stale.
func (e *Engine) SuppressedHook() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.hooks.Deliver != nil {
		//lint:ignore hookreentrancy fixture: documents the reasoned-suppression path
		e.hooks.Deliver(e.n)
	}
}
