// Package bad fails type-checking on purpose: the typed tier must
// refuse to reason from partial types and report one driver finding.
package bad

// Mismatch assigns a string to an int.
func Mismatch() int {
	var n int = "not an int"
	return n
}
