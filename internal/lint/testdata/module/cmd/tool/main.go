// Command tool shows that cmd/ binaries may use the wall clock and
// print freely.
package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now())
}
