// Package errsuse exercises errdrop across package boundaries via the
// module-wide signature index.
package errsuse

import "fixmod/internal/errs"

// Cross drops an error from another package in the module.
func Cross() {
	errs.Fail()
	_ = errs.Fail()
}
