// Package locks exercises the lockhygiene analyzer.
package locks

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Deferred is hygienic.
func (g *guarded) Deferred() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Paired is hygienic: the unlock precedes every return.
func (g *guarded) Paired() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Leaks never unlocks.
func (g *guarded) Leaks() {
	g.mu.Lock()
	g.n++
}

// EarlyReturn leaves the lock held on the skip path.
func (g *guarded) EarlyReturn(skip bool) {
	g.mu.Lock()
	if skip {
		return
	}
	g.n++
	g.mu.Unlock()
}

// ReadSide pairs RLock with RUnlock.
func (g *guarded) ReadSide() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.n
}

// MismatchedRead takes the read lock and never releases it.
func (g *guarded) MismatchedRead() int {
	g.rw.RLock()
	return g.n
}

// ByValue copies its mutex: the callee locks a private copy.
func ByValue(mu sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}
