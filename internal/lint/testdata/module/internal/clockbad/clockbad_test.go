// Test files are exempt from clockdiscipline: watchdog timeouts are a
// legitimate wall-clock use in tests.
package clockbad

import (
	"testing"
	"time"
)

func TestWatchdog(t *testing.T) {
	time.Sleep(time.Nanosecond)
	<-time.After(time.Nanosecond)
}
