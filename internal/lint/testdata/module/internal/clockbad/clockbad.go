// Package clockbad exercises the clockdiscipline analyzer.
package clockbad

import "time"

// Bad calls wall-clock functions a scheduling package must not touch.
func Bad() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	<-time.After(time.Millisecond)
	return time.Since(start)
}

// Fine uses clock-free time arithmetic only.
func Fine(t time.Time) time.Time { return t.Add(time.Second) }
