// Package spawn exercises the nakedgoroutine analyzer.
package spawn

import "sync"

// Tracked is fine: the goroutine is tied to a WaitGroup.
func Tracked() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Signalled is fine: the goroutine blocks on a done channel.
func Signalled() chan struct{} {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	return done
}

// Naked leaks a goroutine with no visible lifecycle.
func Naked(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}
