// Package clock is the sanctioned owner of the wall clock in the
// fixture module — clockdiscipline must stay silent here.
package clock

import "time"

// Now wraps the wall clock.
func Now() time.Time { return time.Now() }
