// Package randbad exercises the seededrand analyzer.
package randbad

import "math/rand"

// Draw uses the forbidden global stream.
func Draw() int {
	rand.Seed(42)
	rand.Shuffle(3, func(i, j int) {})
	return rand.Intn(10) + int(rand.Int63())
}

// Seeded is the sanctioned pattern: an explicit generator.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
