// Package printy exercises the printfdebug analyzer.
package printy

import (
	"fmt"
	"log"
)

// Noisy writes straight to stdout from middleware code.
func Noisy(v int) {
	fmt.Println("debug", v)
	log.Printf("debug %d", v)
}

// Formatted is fine: Sprintf is pure.
func Formatted(v int) string { return fmt.Sprintf("%d", v) }
