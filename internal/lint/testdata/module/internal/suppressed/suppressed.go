// Package suppressed exercises //lint:ignore parsing.
package suppressed

import "time"

// Sanctioned documents why it may read the wall clock.
func Sanctioned() time.Time {
	//lint:ignore clockdiscipline fixture: measures real elapsed wall time
	return time.Now()
}

// Inline suppresses with a trailing comment on the finding line.
func Inline() {
	time.Sleep(time.Millisecond) //lint:ignore clockdiscipline fixture: real pacing
}

// Wildcard suppresses every analyzer on the next line.
func Wildcard() time.Time {
	//lint:ignore * fixture: wildcard form
	return time.Now()
}

// Wrong names a different analyzer, so the finding survives.
func Wrong() time.Time {
	//lint:ignore seededrand fixture: wrong analyzer name
	return time.Now()
}

// Bare omits the mandatory reason: the directive itself is reported and
// the finding it meant to hide survives.
func Bare() time.Time {
	//lint:ignore clockdiscipline
	return time.Now()
}
