// Package errs exercises the errdrop analyzer.
package errs

import "errors"

// Fail always returns an error.
func Fail() error { return errors.New("boom") }

// Value returns data plus an error.
func Value() (int, error) { return 0, errors.New("boom") }

// Pure returns no error; bare calls are fine.
func Pure() int { return 1 }

// Careless drops errors in every statement form the analyzer covers.
func Careless() {
	Fail()
	go Fail()
	defer Fail()
	Pure()
	_ = Fail()
	if err := Fail(); err != nil {
		_ = err
	}
}
