package lint

import (
	"go/ast"
	"go/token"
)

// The typed tier needs flow sensitivity for exactly one reason: patterns
// like core.Server.Stop — unlock, then block on a WaitGroup — are
// correct, and a flow-insensitive "function holds lock X somewhere"
// approximation would flag them. cfgBlock/funcCFG are a deliberately
// small basic-block CFG over statements: enough structure for a may-held
// lock dataflow with union joins, nothing more.

type cfgBlock struct {
	index int
	nodes []ast.Node // statements (and select/range markers) in order
	succs []*cfgBlock
}

type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock // sentinel; returns and final fallthrough edge here

	// comm marks statements that are select communication clauses: their
	// channel operation blocks (or not) as part of the enclosing select,
	// never on its own, so blockingunderlock must judge the SelectStmt
	// instead.
	comm map[ast.Stmt]bool
}

type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock

	// break/continue resolution: innermost-first stacks plus the label
	// (if any) attached to the enclosing for/switch/select statement.
	loops  []loopCtx
	labels map[string]*cfgBlock // goto targets
	gotos  []pendingGoto
}

type loopCtx struct {
	label     string
	brk       *cfgBlock // break target
	cont      *cfgBlock // continue target; nil for switch/select
	isLoop    bool
	savedCont bool
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{comm: make(map[ast.Stmt]bool)}, labels: make(map[string]*cfgBlock)}
	b.g.entry = b.newBlock()
	b.g.exit = &cfgBlock{index: -1}
	b.cur = b.g.entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.exit)
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target)
		} else {
			b.edge(pg.from, b.g.exit)
		}
	}
	b.g.exit.index = len(b.g.blocks)
	b.g.blocks = append(b.g.blocks, b.g.exit)
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// startBlock seals cur with an edge into a fresh block and makes that
// the current block.
func (b *cfgBuilder) startBlock() *cfgBlock {
	blk := b.newBlock()
	b.edge(b.cur, blk)
	b.cur = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		blk := b.startBlock()
		b.labels[s.Label.Name] = blk
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()

		b.cur = b.newBlock()
		b.edge(cond, b.cur)
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)

		if s.Else != nil {
			b.cur = b.newBlock()
			b.edge(cond, b.cur)
			b.stmt(s.Else, "")
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		header := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		exit := b.newBlock()
		b.edge(header, exit) // cond false (or break via exit)
		post := header
		if s.Post != nil {
			post = b.newBlock()
		}
		b.pushLoop(label, exit, post, true)
		b.cur = b.newBlock()
		b.edge(header, b.cur)
		b.stmtList(s.Body.List)
		if s.Post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post, "")
			b.edge(b.cur, header)
		} else {
			b.edge(b.cur, header)
		}
		b.popLoop()
		b.cur = exit

	case *ast.RangeStmt:
		header := b.startBlock()
		// The RangeStmt itself is the header node: a range over a
		// channel is a blocking receive the analyzers must see.
		b.add(s)
		exit := b.newBlock()
		b.edge(header, exit)
		b.pushLoop(label, exit, header, true)
		b.cur = b.newBlock()
		b.edge(header, b.cur)
		b.stmtList(s.Body.List)
		b.edge(b.cur, header)
		b.popLoop()
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, nil)

	case *ast.SelectStmt:
		// The SelectStmt node carries blocking semantics (unless it has
		// a default clause); keep it visible in the header block.
		b.add(s)
		b.caseClauses(s.Body.List, label, s)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findLoop(s.Label, false); t != nil {
				b.edge(b.cur, t.brk)
			} else {
				b.edge(b.cur, b.g.exit)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if t := b.findLoop(s.Label, true); t != nil {
				b.edge(b.cur, t.cont)
			} else {
				b.edge(b.cur, b.g.exit)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// caseClauses wires the fallthrough edge structurally.
		}

	default:
		// Straight-line statements: assignments, expression statements,
		// declarations, send, inc/dec, go, defer, empty.
		b.add(s)
	}
}

// caseClauses lowers the shared body shape of switch/type-switch/select:
// a header (the current block) branching to each clause, all clauses
// joining after. A switch without a default can skip every clause; a
// select without a default cannot, but modelling the extra edge only
// widens the may-held sets, which is safe.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, label string, sel *ast.SelectStmt) {
	header := b.cur
	join := b.newBlock()
	b.pushLoop(label, join, nil, false)
	hasDefault := false
	var prevBody *cfgBlock // for fallthrough
	for _, c := range clauses {
		var body []ast.Stmt
		var comm ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			comm = c.Comm
			body = c.Body
		}
		blk := b.newBlock()
		b.edge(header, blk)
		if prevBody != nil {
			b.edge(prevBody, blk) // fallthrough from the previous clause
		}
		b.cur = blk
		if comm != nil {
			b.g.comm[comm] = true
			b.stmt(comm, "")
		}
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(body)
		if fallsThrough {
			prevBody = b.cur
		} else {
			prevBody = nil
			b.edge(b.cur, join)
		}
	}
	if !hasDefault || sel == nil {
		b.edge(header, join)
	}
	b.popLoop()
	b.cur = join
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock, isLoop bool) {
	b.loops = append(b.loops, loopCtx{label: label, brk: brk, cont: cont, isLoop: isLoop})
}

func (b *cfgBuilder) popLoop() {
	b.loops = b.loops[:len(b.loops)-1]
}

func (b *cfgBuilder) findLoop(label *ast.Ident, needLoop bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if needLoop && !lc.isLoop {
			continue
		}
		if label == nil || lc.label == label.Name {
			return lc
		}
	}
	return nil
}
