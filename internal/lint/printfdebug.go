package lint

import "go/ast"

// PrintfDebug forbids fmt.Print* and log.* output in internal/
// packages. The middleware's observable surface is internal/metrics and
// internal/trace — structured, deterministic, assertable in tests. A
// stray fmt.Println in a server loop interleaves nondeterministically
// with real output, corrupts the byte-identical reports reactsim
// promises, and is invisible to the trace-based experiments.
//
// Test files are exempt: Example tests require fmt output by contract.
// cmd/ and examples/ are user-facing programs and print freely.
type PrintfDebug struct{}

var forbiddenPrintFuncs = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
	},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

func (PrintfDebug) Name() string { return "printfdebug" }
func (PrintfDebug) Doc() string {
	return "forbid fmt.Print*/log.* in internal/; route output through internal/metrics or internal/trace"
}

func (d PrintfDebug) Run(p *Pass) {
	if !inInternal(p.Pkg.RelPath) {
		return
	}
	eachSourceFile(p.Pkg, false, func(f *File) {
		names := make(map[string]map[string]bool) // local import name → forbidden funcs
		for path, funcs := range map[string]map[string]bool{"fmt": forbiddenPrintFuncs["fmt"], "log": forbiddenPrintFuncs["log"]} {
			if name, ok := importLocalName(f.AST, path); ok {
				names[name] = funcs
			}
		}
		if len(names) == 0 {
			return
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if funcs, ok := names[id.Name]; ok && funcs[sel.Sel.Name] {
				p.Reportf(d.Name(), call.Pos(),
					"%s.%s writes unstructured output from the middleware; use internal/metrics or internal/trace",
					id.Name, sel.Sel.Name)
			}
			return true
		})
	})
}
