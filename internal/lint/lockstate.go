package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The lock-state engine computes, for every call / lock-acquisition /
// blocking operation in the module, the set of lock classes that MAY be
// held when it executes. Two layers:
//
//  1. Per function: a forward may-held dataflow over the basic-block CFG
//     (union at joins). `defer mu.Unlock()` never kills, so a lock held
//     to function exit stays in the set; an explicit early Unlock kills
//     on that path only — which is what lets core.Server.Stop (unlock,
//     then WaitGroup.Wait) pass.
//  2. Across functions: a fixpoint propagating entry-held sets along
//     call edges — entry(callee) ⊇ entry(caller) ∪ heldAtSite. `go`
//     edges contribute nothing (a new goroutine starts lock-free);
//     deferred calls contribute the set held at registration.
//
// Lock identity is a "class", not an instance: every m.mu of every
// *taskq.Manager is one class "taskq.Manager.mu". That is exactly the
// granularity a lock-ordering convention is written at, and it makes
// shard-stripe locks (many instances, one class) analyzable. The
// instance-blind over-approximation is deliberate.

type lockClass struct {
	id  int
	key string // stable report key, e.g. "engine.Engine.batchMu"
}

type edgeKind int

const (
	edgeCall edgeKind = iota
	edgeGo
	edgeDefer
)

type acquireFact struct {
	node      *cgNode
	class     *lockClass
	read      bool // RLock
	pos       token.Pos
	localHeld []int
}

type callFact struct {
	node      *cgNode
	call      *ast.CallExpr
	pos       token.Pos
	kind      edgeKind
	localHeld []int
	targets   []*cgNode

	// Dispatch descriptors for analyzer-side classification.
	fn         *types.Func  // static callee, incl. interface/stdlib methods
	field      *types.Var   // set for calls through a func-typed struct field
	fieldOwner *types.Named // named struct type owning field
	funType    *types.Named // set when the callee expression has a named func type
}

type blockFact struct {
	node      *cgNode
	pos       token.Pos
	desc      string
	localHeld []int
}

type funcFacts struct {
	node     *cgNode
	acquires []*acquireFact
	calls    []*callFact
	blocks   []*blockFact
}

// entryProv remembers one example call edge that introduced a class into
// a function's entry set, for readable diagnostics.
type entryProv struct {
	caller *cgNode
	pos    token.Pos
}

type lockFacts struct {
	tm      *TypedModule
	graph   *callGraph
	classes []*lockClass
	byKey   map[string]*lockClass
	perFunc map[*cgNode]*funcFacts

	entry    map[*cgNode]map[int]bool
	entryWhy map[*cgNode]map[int]entryProv
}

func computeLockFacts(tm *TypedModule) (*lockFacts, error) {
	lf := &lockFacts{
		tm:       tm,
		graph:    buildCallGraph(tm),
		byKey:    make(map[string]*lockClass),
		perFunc:  make(map[*cgNode]*funcFacts),
		entry:    make(map[*cgNode]map[int]bool),
		entryWhy: make(map[*cgNode]map[int]entryProv),
	}
	var pending []syntheticEdge
	for _, n := range lf.graph.nodes {
		ff, syn := lf.analyzeFunc(n)
		lf.perFunc[n] = ff
		pending = append(pending, syn...)
	}
	// Closure values passed into module functions are assumed invoked by
	// the receiving function: attach a zero-local-held call fact to the
	// callee so entry-context still reaches the closure body.
	for _, se := range pending {
		ff := lf.perFunc[se.via]
		if ff == nil {
			continue
		}
		ff.calls = append(ff.calls, &callFact{
			node: se.via, pos: se.pos, kind: edgeCall, targets: se.targets,
		})
	}
	lf.solveEntry()
	return lf, nil
}

type syntheticEdge struct {
	via     *cgNode // module callee receiving the func value
	targets []*cgNode
	pos     token.Pos
}

func (lf *lockFacts) class(key string) *lockClass {
	if c, ok := lf.byKey[key]; ok {
		return c
	}
	c := &lockClass{id: len(lf.classes), key: key}
	lf.classes = append(lf.classes, c)
	lf.byKey[key] = c
	return c
}

// ---------------------------------------------------------------------
// Per-function analysis

type funcWalker struct {
	lf   *lockFacts
	node *cgNode
	tp   *TypedPackage
	cfg  *funcCFG
	held map[int]bool
	ff   *funcFacts
	syn  []syntheticEdge

	record bool // phase B: collect facts
}

func (lf *lockFacts) analyzeFunc(n *cgNode) (*funcFacts, []syntheticEdge) {
	if n.cfg == nil {
		n.cfg = buildCFG(n.body)
	}
	g := n.cfg
	in := make([]map[int]bool, len(g.blocks))
	for i := range in {
		in[i] = make(map[int]bool)
	}
	// Phase A: fixpoint on may-held sets. Blocks are few; iterate until
	// stable.
	w := &funcWalker{lf: lf, node: n, tp: n.pkg, cfg: g}
	for changed := true; changed; {
		changed = false
		for _, blk := range g.blocks {
			w.held = copySet(in[blk.index])
			for _, node := range blk.nodes {
				w.applyNode(node)
			}
			for _, succ := range blk.succs {
				for id := range w.held {
					if !in[succ.index][id] {
						in[succ.index][id] = true
						changed = true
					}
				}
			}
		}
	}
	// Phase B: one recording pass with the stable in-sets.
	w.record = true
	w.ff = &funcFacts{node: n}
	for _, blk := range g.blocks {
		w.held = copySet(in[blk.index])
		for _, node := range blk.nodes {
			w.applyNode(node)
		}
	}
	return w.ff, w.syn
}

func copySet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (w *funcWalker) heldSnapshot() []int {
	out := make([]int, 0, len(w.held))
	for id := range w.held {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// applyNode runs the transfer function for one CFG node: lock/unlock
// effects mutate w.held; in record mode, call/acquire/blocking facts are
// collected with the held set current at that point.
func (w *funcWalker) applyNode(node ast.Node) {
	switch s := node.(type) {
	case *ast.DeferStmt:
		w.applyDefer(s)
	case *ast.GoStmt:
		w.applyGo(s)
	case *ast.RangeStmt:
		// Header node: only the range operand belongs here; the body is
		// its own set of blocks.
		w.walkExpr(s.X, false)
		if w.record && isChanType(w.tp, s.X) {
			w.blocking(s.X.Pos(), "range over channel")
		}
	case *ast.SelectStmt:
		if w.record && !selectHasDefault(s) {
			w.blocking(s.Pos(), "select without default")
		}
	case *ast.SendStmt:
		w.walkExpr(s.Chan, false)
		w.walkExpr(s.Value, false)
		if w.record && !w.cfg.comm[s] {
			w.blocking(s.Arrow, "channel send")
		}
	default:
		comm := false
		if stmt, ok := node.(ast.Stmt); ok {
			comm = w.cfg.comm[stmt]
		}
		w.walkNode(node, comm)
	}
}

func (w *funcWalker) applyDefer(s *ast.DeferStmt) {
	call := s.Call
	if cls, _, release, _ := w.lf.lockOp(w.tp, call); cls != nil {
		// A deferred Unlock runs at exit: it never kills mid-function,
		// which is exactly the hold-to-exit semantics we want. A
		// deferred Lock is nonsense; ignore both.
		_ = release
		return
	}
	// Arguments are evaluated at registration time, synchronously.
	for _, arg := range call.Args {
		w.walkNode(arg, false)
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// defer func() { ... }(): body runs at exit; approximate the
		// held set with the registration-point set.
		if w.record {
			if n := w.lf.graph.byLit[fl]; n != nil {
				w.ff.calls = append(w.ff.calls, &callFact{
					node: w.node, call: call, pos: call.Pos(), kind: edgeDefer,
					localHeld: w.heldSnapshot(), targets: []*cgNode{n},
				})
			}
		}
		return
	}
	if w.record {
		w.recordCall(call, edgeDefer)
	}
}

func (w *funcWalker) applyGo(s *ast.GoStmt) {
	call := s.Call
	for _, arg := range call.Args {
		w.walkNode(arg, false) // args evaluate synchronously
	}
	if w.record {
		w.recordCall(call, edgeGo)
	}
}

// walkNode inspects a statement or expression in evaluation order,
// pruning nested function literals (they are separate call-graph nodes).
func (w *funcWalker) walkNode(node ast.Node, comm bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// Nested inside a recorded statement shouldn't happen (the
			// CFG lowers them), but guard anyway.
			w.applyGo(n)
			return false
		case *ast.DeferStmt:
			w.applyDefer(n)
			return false
		case *ast.CallExpr:
			w.handleCall(n)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && w.record && !comm {
				w.blocking(n.Pos(), "channel receive")
			}
		case *ast.SendStmt:
			if w.record && !comm {
				w.blocking(n.Arrow, "channel send")
			}
		}
		return true
	})
}

func (w *funcWalker) walkExpr(e ast.Expr, comm bool) {
	if e != nil {
		w.walkNode(e, comm)
	}
}

func (w *funcWalker) blocking(pos token.Pos, desc string) {
	w.ff.blocks = append(w.ff.blocks, &blockFact{
		node: w.node, pos: pos, desc: desc, localHeld: w.heldSnapshot(),
	})
}

func (w *funcWalker) handleCall(call *ast.CallExpr) {
	if cls, acquire, release, read := w.lf.lockOp(w.tp, call); cls != nil {
		if acquire {
			if w.record {
				w.ff.acquires = append(w.ff.acquires, &acquireFact{
					node: w.node, class: cls, read: read, pos: call.Pos(),
					localHeld: w.heldSnapshot(),
				})
			}
			w.held[cls.id] = true
		}
		if release {
			delete(w.held, cls.id)
		}
		return
	}
	if !w.record {
		return
	}
	w.recordCall(call, edgeCall)
}

func (w *funcWalker) recordCall(call *ast.CallExpr, kind edgeKind) {
	tp, lf := w.tp, w.lf
	fn := calleeFunc(tp, call)
	targets := lf.graph.resolveCall(tp, call)
	var funType *types.Named
	if tv, ok := tp.Info.Types[ast.Unparen(call.Fun)]; ok && !tv.IsType() {
		if named, ok := tv.Type.(*types.Named); ok {
			if _, isSig := named.Underlying().(*types.Signature); isSig {
				funType = named
			}
		}
	}
	snapshot := w.heldSnapshot()
	field, fieldOwner := calleeField(tp, call)
	w.ff.calls = append(w.ff.calls, &callFact{
		node: w.node, call: call, pos: call.Pos(), kind: kind,
		localHeld: snapshot, targets: targets,
		fn: fn, field: field, fieldOwner: fieldOwner, funType: funType,
	})
	if desc := blockingCallDesc(fn); desc != "" {
		w.blocking(call.Pos(), desc)
	}
	// Function values passed as arguments: if the callee is a module
	// function, assume it may invoke them (entry context flows through
	// the callee); if external (sort.Slice, sync.Once.Do), assume a
	// synchronous invocation right here.
	for _, arg := range call.Args {
		ts := lf.graph.funcValueTargets(tp, arg)
		if len(ts) == 0 {
			continue
		}
		if kind == edgeGo && len(targets) == 0 {
			continue // closure handed to a goroutine-spawning external call
		}
		if len(targets) > 0 {
			for _, t := range targets {
				w.syn = append(w.syn, syntheticEdge{via: t, targets: ts, pos: call.Pos()})
			}
		} else {
			w.ff.calls = append(w.ff.calls, &callFact{
				node: w.node, call: call, pos: call.Pos(), kind: kind,
				localHeld: snapshot, targets: ts,
			})
		}
	}
}

// ---------------------------------------------------------------------
// Lock-operation classification

var lockMethods = map[string][2]bool{ // name -> {acquire, read}
	"Lock":    {true, false},
	"RLock":   {true, true},
	"Unlock":  {false, false},
	"RUnlock": {false, true},
}

func (lf *lockFacts) lockOp(tp *TypedPackage, call *ast.CallExpr) (cls *lockClass, acquire, release, read bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false, false, false
	}
	mode, known := lockMethods[sel.Sel.Name]
	if !known {
		return nil, false, false, false
	}
	s := tp.Info.Selections[sel]
	if s == nil {
		return nil, false, false, false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false, false
	}
	key := lf.classKey(tp, sel.X, s)
	if key == "" {
		return nil, false, false, false
	}
	c := lf.class(key)
	if mode[0] {
		return c, true, false, mode[1]
	}
	return c, false, true, mode[1]
}

// classKey names the lock class a receiver expression denotes. Struct
// fields key as "pkg.Type.field" (instance-blind); package-level vars as
// "pkg.var"; locals as "local:func.name". Embedded sync.Mutex promotion
// (m.Lock() on a type embedding Mutex) resolves through the selection's
// field index path.
func (lf *lockFacts) classKey(tp *TypedPackage, recv ast.Expr, s *types.Selection) string {
	recv = ast.Unparen(recv)
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = ast.Unparen(star.X)
	}
	// Promoted method: m.Lock() where the receiver type embeds the
	// mutex. Index() is the field path plus the method index.
	if idx := s.Index(); len(idx) > 1 {
		if named := derefNamed(typeOf(tp, recv)); named != nil {
			parts := []string{typeKey(named)}
			cur := named.Underlying()
			for _, i := range idx[:len(idx)-1] {
				st, ok := derefStruct(cur)
				if !ok || i >= st.NumFields() {
					break
				}
				f := st.Field(i)
				parts = append(parts, f.Name())
				cur = f.Type().Underlying()
			}
			return strings.Join(parts, ".")
		}
	}
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		if fs := tp.Info.Selections[r]; fs != nil && fs.Kind() == types.FieldVal {
			if named := derefNamed(fs.Recv()); named != nil {
				return typeKey(named) + "." + fs.Obj().Name()
			}
		}
		if v, ok := tp.Info.Uses[r.Sel].(*types.Var); ok && v.Pkg() != nil && !v.IsField() {
			if v.Parent() == v.Pkg().Scope() {
				return pathBase(v.Pkg().Path()) + "." + v.Name()
			}
		}
	case *ast.Ident:
		if v, ok := tp.Info.Uses[r].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return pathBase(v.Pkg().Path()) + "." + v.Name()
			}
			// Local variable or parameter holding a mutex directly (not
			// a pointer into a struct we can name): function-scoped.
			if named := derefNamed(v.Type()); named != nil &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
				return typeKey(named)
			}
			// Key by the variable's DECLARATION position, not the use
			// site: every Lock/Unlock on the same local must share one
			// class or the unlock never kills the lock.
			return "local:" + lf.ownerName(tp, v.Pos()) + "." + v.Name()
		}
	}
	return "local:" + lf.ownerName(tp, recv.Pos()) + "." + types.ExprString(recv)
}

// ownerName gives a stable scope name for function-local lock classes.
func (lf *lockFacts) ownerName(tp *TypedPackage, pos token.Pos) string {
	file, line, _ := tp.relPos(lf.tm.Fset, pos)
	return fmt.Sprintf("%s:%d", file, line)
}

func typeOf(tp *TypedPackage, e ast.Expr) types.Type {
	if tv, ok := tp.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Origin()
	}
	return nil
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	st, ok := t.(*types.Struct)
	return st, ok
}

func typeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return pathBase(obj.Pkg().Path()) + "." + obj.Name()
}

func pathBase(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}

// ---------------------------------------------------------------------
// Blocking-call classification

var netBlocking = map[string]bool{
	"Read": true, "Write": true, "Accept": true, "Dial": true,
	"DialTimeout": true, "ReadFrom": true, "WriteTo": true,
}
var bufioBlocking = map[string]bool{
	"Read": true, "ReadByte": true, "ReadRune": true, "ReadString": true,
	"ReadBytes": true, "ReadLine": true, "ReadSlice": true, "Scan": true,
	"Write": true, "WriteByte": true, "WriteRune": true, "WriteString": true,
	"Flush": true, "Peek": true,
}
var ioBlocking = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true,
	"ReadFull": true, "WriteString": true, "Read": true, "Write": true,
}
var httpBlocking = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
	"ListenAndServe": true, "Serve": true,
}

// blockingCallDesc classifies calls that can block indefinitely (or for
// a scheduling-relevant duration) and therefore must not run under a
// mutex. sync.Cond.Wait is exempt: it releases its mutex while parked.
func blockingCallDesc(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	recv := receiverTypeName(fn)
	switch {
	case path == "time" && name == "Sleep":
		return "time.Sleep"
	case path == "sync" && name == "Wait" && recv != "Cond":
		return "sync." + recv + ".Wait"
	case strings.HasSuffix(path, "internal/clock") && name == "Sleep":
		return "clock.Sleep"
	case (path == "net" || strings.HasPrefix(path, "net/") && path != "net/url") && netBlocking[name]:
		return qualifiedName(path, recv, name)
	case (path == "encoding/json" || path == "encoding/gob") && (name == "Encode" || name == "Decode"):
		return qualifiedName(path, recv, name) + " (stream I/O)"
	case path == "bufio" && bufioBlocking[name]:
		return qualifiedName(path, recv, name)
	case path == "io" && ioBlocking[name]:
		return qualifiedName(path, recv, name)
	case path == "net/http" && httpBlocking[name]:
		return qualifiedName(path, recv, name)
	}
	return ""
}

func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := derefNamed(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}

func qualifiedName(path, recv, name string) string {
	base := pathBase(path)
	if recv != "" {
		return base + "." + recv + "." + name
	}
	return base + "." + name
}

func isChanType(tp *TypedPackage, e ast.Expr) bool {
	t := typeOf(tp, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Interprocedural entry solution

func (lf *lockFacts) solveEntry() {
	for _, n := range lf.graph.nodes {
		lf.entry[n] = make(map[int]bool)
		lf.entryWhy[n] = make(map[int]entryProv)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range lf.graph.nodes {
			ff := lf.perFunc[n]
			if ff == nil {
				continue
			}
			base := lf.entry[n]
			for _, cf := range ff.calls {
				if cf.kind == edgeGo || len(cf.targets) == 0 {
					continue
				}
				for _, t := range cf.targets {
					te := lf.entry[t]
					add := func(id int) {
						if !te[id] {
							te[id] = true
							lf.entryWhy[t][id] = entryProv{caller: n, pos: cf.pos}
							changed = true
						}
					}
					for id := range base {
						add(id)
					}
					for _, id := range cf.localHeld {
						add(id)
					}
				}
			}
		}
	}
}

// finalHeld is the full may-held set at a fact site: locally tracked
// locks plus everything that may be held on entry to the function.
func (lf *lockFacts) finalHeld(n *cgNode, localHeld []int) []int {
	set := make(map[int]bool, len(localHeld))
	for _, id := range localHeld {
		set[id] = true
	}
	for id := range lf.entry[n] {
		set[id] = true
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// heldDescription renders a held set with provenance: lock names plus,
// for entry-inherited locks, the example caller chain edge.
func (lf *lockFacts) heldDescription(n *cgNode, held []int, localHeld []int) string {
	local := make(map[int]bool, len(localHeld))
	for _, id := range localHeld {
		local[id] = true
	}
	parts := make([]string, 0, len(held))
	for _, id := range held {
		name := lf.classes[id].key
		if !local[id] {
			if prov, ok := lf.entryWhy[n][id]; ok {
				file, line, _ := lf.tm.relPosOf(prov.pos)
				name += fmt.Sprintf(" (held by caller %s at %s:%d)", prov.caller.name, file, line)
			}
		}
		parts = append(parts, name)
	}
	return strings.Join(parts, ", ")
}
