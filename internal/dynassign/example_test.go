package dynassign_test

import (
	"fmt"
	"time"

	"react/internal/clock"
	"react/internal/dynassign"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/taskq"
)

// A worker who typically answers in 5-9 seconds has been holding a task for
// 45 of its 90 seconds: Eq. 2 says the window probability has collapsed and
// the monitor orders a reassignment.
func Example() {
	reg := profile.NewRegistry()
	w, _ := reg.Register("flaky", region.Point{Lat: 37.98, Lon: 23.73})
	for _, secs := range []float64{5, 7, 9, 6} {
		w.RecordCompletion("traffic", secs, true)
	}

	assignedAt := clock.Epoch
	rec := taskq.Record{
		Task:       taskq.Task{ID: "t1", Deadline: assignedAt.Add(90 * time.Second), Category: "traffic"},
		Status:     taskq.Assigned,
		Worker:     "flaky",
		AssignedAt: assignedAt,
	}

	monitor := dynassign.Monitor{} // paper defaults: threshold 0.1, history 3
	early := monitor.Evaluate(w, rec, assignedAt.Add(3*time.Second))
	late := monitor.Evaluate(w, rec, assignedAt.Add(45*time.Second))
	fmt.Printf("t=3s  reassign=%v (%s)\n", early.Reassign, early.Reason)
	fmt.Printf("t=45s reassign=%v (%s)\n", late.Reassign, late.Reason)
	// Output:
	// t=3s  reassign=false (probability above threshold)
	// t=45s reassign=true (probability below threshold)
}
