// Package dynassign is REACT's Dynamic Assignment Component (§III.A,
// §IV.B): it watches every executing task and, using only the worker's
// profile, estimates Eq. 2 — the probability that the execution time lands
// between the time already elapsed and the time remaining to the deadline.
// When that probability drops below a threshold (10% in the paper's
// experiments) the worker has almost certainly delayed or abandoned the
// task, and the component removes the assignment so the Scheduling
// Component can find a better match while there is still time.
package dynassign

import (
	"time"

	"react/internal/profile"
	"react/internal/taskq"
)

// DefaultThreshold is the reassignment probability bound used in §V.C.
const DefaultThreshold = 0.10

// Monitor holds the reassignment policy. The zero value uses the paper's
// settings after Normalize.
type Monitor struct {
	Threshold  float64 // reassign when Eq. 2 falls below this (default 0.1)
	MinHistory int     // completed tasks required before acting (default 3)
}

// Normalize fills zero fields with the paper's defaults.
func (m Monitor) Normalize() Monitor {
	if m.Threshold <= 0 {
		m.Threshold = DefaultThreshold
	}
	if m.MinHistory <= 0 {
		m.MinHistory = profile.DefaultMinHistory
	}
	return m
}

// Reason explains a Decision.
type Reason string

// Decision reasons, in the order the monitor checks them.
const (
	ReasonNoHistory Reason = "insufficient history" // training phase, model inactive
	ReasonExpired   Reason = "deadline expired"     // no worker can do better now
	ReasonHealthy   Reason = "probability above threshold"
	ReasonReassign  Reason = "probability below threshold"
)

// Decision is the monitor's verdict for one executing task.
type Decision struct {
	TaskID      string
	Worker      string
	Probability float64 // Eq. 2 value (NaN-free; 0 when not computed)
	Reassign    bool
	Reason      Reason
}

// Evaluate applies Eq. 2 to one assigned record at the given instant.
// p must be the profile of rec.Worker.
func (m Monitor) Evaluate(p *profile.Profile, rec taskq.Record, now time.Time) Decision {
	m = m.Normalize()
	d := Decision{TaskID: rec.Task.ID, Worker: rec.Worker}
	model, ok := p.Model(m.MinHistory)
	if !ok {
		// Training phase: "the first 3 tasks in every worker are not going
		// to be reassigned so as to train the system" (§V.C).
		d.Reason = ReasonNoHistory
		return d
	}
	if !rec.Task.Deadline.After(now) {
		// Past the deadline no other worker has a better probability of
		// making it, so reassignment is pointless (§V.C, Greedy analysis).
		d.Reason = ReasonExpired
		return d
	}
	elapsed := now.Sub(rec.AssignedAt).Seconds()
	ttd := rec.Task.Deadline.Sub(rec.AssignedAt).Seconds()
	d.Probability = model.ProbWindow(elapsed, ttd)
	if d.Probability < m.Threshold {
		d.Reassign = true
		d.Reason = ReasonReassign
	} else {
		d.Reason = ReasonHealthy
	}
	return d
}

// WorkerDirectory is the worker-lookup surface the sweep needs; satisfied
// by *profile.Registry.
type WorkerDirectory interface {
	Get(id string) (*profile.Profile, bool)
}

// AssignedSource is the executing-task snapshot the sweep walks; satisfied
// by *taskq.Manager and the engine's sharded task store.
type AssignedSource interface {
	AssignedTasks() []taskq.Record
}

// Sweep evaluates every currently assigned task. Workers missing from the
// registry (departed mid-task) are reported for reassignment with
// ReasonNoWorker.
func (m Monitor) Sweep(reg WorkerDirectory, tm AssignedSource, now time.Time) []Decision {
	m = m.Normalize()
	records := tm.AssignedTasks()
	out := make([]Decision, 0, len(records))
	for _, rec := range records {
		p, ok := reg.Get(rec.Worker)
		if !ok {
			out = append(out, Decision{
				TaskID:   rec.Task.ID,
				Worker:   rec.Worker,
				Reassign: rec.Task.Deadline.After(now),
				Reason:   ReasonNoWorker,
			})
			continue
		}
		out = append(out, m.Evaluate(p, rec, now))
	}
	return out
}

// ReasonNoWorker marks tasks whose worker left the system entirely; they
// are reassigned unless already expired.
const ReasonNoWorker Reason = "worker departed"
