package dynassign

import (
	"testing"
	"time"

	"react/internal/clock"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/taskq"
)

var athens = region.Point{Lat: 37.98, Lon: 23.73}

func seasoned(id string, execTimes ...float64) *profile.Profile {
	r := profile.NewRegistry()
	p, _ := r.Register(id, athens)
	for _, e := range execTimes {
		p.RecordCompletion("traffic", e, true)
	}
	return p
}

func assignedRecord(taskID, worker string, assignedAt time.Time, deadline time.Duration) taskq.Record {
	return taskq.Record{
		Task: taskq.Task{
			ID:       taskID,
			Deadline: assignedAt.Add(deadline),
			Category: "traffic",
		},
		Status:     taskq.Assigned,
		Worker:     worker,
		AssignedAt: assignedAt,
		Attempts:   1,
	}
}

func TestNormalizeDefaults(t *testing.T) {
	m := Monitor{}.Normalize()
	if m.Threshold != DefaultThreshold || m.MinHistory != profile.DefaultMinHistory {
		t.Fatalf("defaults = %+v", m)
	}
}

func TestTrainingPhaseNeverReassigns(t *testing.T) {
	p := seasoned("w", 5, 8) // only 2 samples < MinHistory of 3
	rec := assignedRecord("t1", "w", clock.Epoch, 60*time.Second)
	// Even with the deadline nearly gone, training workers are untouched.
	d := Monitor{}.Evaluate(p, rec, clock.Epoch.Add(59*time.Second))
	if d.Reassign || d.Reason != ReasonNoHistory {
		t.Fatalf("decision = %+v", d)
	}
}

func TestFreshAssignmentHealthy(t *testing.T) {
	// Worker finishes in 5-10s; the 90s deadline was just granted. Eq. 2 is
	// near 1 and the task stays put.
	p := seasoned("w", 5, 7, 9, 6, 8)
	rec := assignedRecord("t1", "w", clock.Epoch, 90*time.Second)
	d := Monitor{}.Evaluate(p, rec, clock.Epoch.Add(2*time.Second))
	if d.Reassign {
		t.Fatalf("fresh assignment reassigned: %+v", d)
	}
	if d.Reason != ReasonHealthy || d.Probability < 0.5 {
		t.Fatalf("decision = %+v", d)
	}
}

func TestDelayedWorkerTriggersReassignment(t *testing.T) {
	// Typical completions 5-9s. After 60 of 90 seconds the window
	// probability has collapsed: the worker has plainly abandoned the task.
	p := seasoned("w", 5, 7, 9, 6, 8)
	rec := assignedRecord("t1", "w", clock.Epoch, 90*time.Second)
	d := Monitor{}.Evaluate(p, rec, clock.Epoch.Add(60*time.Second))
	if !d.Reassign || d.Reason != ReasonReassign {
		t.Fatalf("decision = %+v", d)
	}
	if d.Probability >= DefaultThreshold {
		t.Fatalf("probability = %v, expected < %v", d.Probability, DefaultThreshold)
	}
}

func TestProbabilityMonotoneOverElapsedTime(t *testing.T) {
	p := seasoned("w", 5, 7, 9, 6, 8)
	rec := assignedRecord("t1", "w", clock.Epoch, 120*time.Second)
	prev := 2.0
	for _, at := range []time.Duration{1, 5, 10, 20, 40, 80} {
		d := Monitor{}.Evaluate(p, rec, clock.Epoch.Add(at*time.Second))
		if d.Probability > prev+1e-12 {
			t.Fatalf("Eq.2 increased at %v: %v > %v", at, d.Probability, prev)
		}
		prev = d.Probability
	}
}

func TestExpiredTaskNotReassigned(t *testing.T) {
	p := seasoned("w", 5, 7, 9)
	rec := assignedRecord("t1", "w", clock.Epoch, 30*time.Second)
	d := Monitor{}.Evaluate(p, rec, clock.Epoch.Add(31*time.Second))
	if d.Reassign || d.Reason != ReasonExpired {
		t.Fatalf("decision = %+v", d)
	}
}

func TestCustomThreshold(t *testing.T) {
	p := seasoned("w", 5, 7, 9, 6, 8)
	rec := assignedRecord("t1", "w", clock.Epoch, 90*time.Second)
	now := clock.Epoch.Add(15 * time.Second)
	strict := Monitor{Threshold: 0.95}.Evaluate(p, rec, now)
	lax := Monitor{Threshold: 0.001}.Evaluate(p, rec, now)
	if !strict.Reassign {
		t.Fatalf("strict threshold did not reassign: %+v", strict)
	}
	if lax.Reassign {
		t.Fatalf("lax threshold reassigned: %+v", lax)
	}
}

func TestSweep(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	tm := taskq.NewManager(clk)
	reg := profile.NewRegistry()

	// steady: typically finishes in 50-90s, so at the sweep instant (60s
	// elapsed, 300s deadline) it still looks healthy. slow: typically 5-9s,
	// so 60s elapsed means it has abandoned the task. ghost: departs after
	// taking a task. trainee: too little history.
	for _, id := range []string{"steady", "slow", "ghost", "trainee"} {
		p, _ := reg.Register(id, athens)
		switch id {
		case "steady":
			for _, e := range []float64{50, 70, 90, 60} {
				p.RecordCompletion("traffic", e, true)
			}
		case "slow", "ghost":
			for _, e := range []float64{5, 7, 9, 6} {
				p.RecordCompletion("traffic", e, true)
			}
		case "trainee":
			p.RecordCompletion("traffic", 5, true)
		}
	}
	submit := func(id string, deadline time.Duration, worker string) {
		if err := tm.Submit(taskq.Task{ID: id, Deadline: clk.Now().Add(deadline), Category: "traffic"}); err != nil {
			t.Fatal(err)
		}
		if err := tm.Assign(id, worker); err != nil {
			t.Fatal(err)
		}
	}
	submit("t-steady", 300*time.Second, "steady")
	submit("t-slow", 90*time.Second, "slow")
	submit("t-ghost", 300*time.Second, "ghost")
	submit("t-trainee", 90*time.Second, "trainee")
	reg.Deregister("ghost")

	clk.Advance(60 * time.Second)
	decisions := Monitor{}.Sweep(reg, tm, clk.Now())
	if len(decisions) != 4 {
		t.Fatalf("sweep returned %d decisions", len(decisions))
	}
	byTask := map[string]Decision{}
	for _, d := range decisions {
		byTask[d.TaskID] = d
	}
	if d := byTask["t-steady"]; d.Reassign || d.Reason != ReasonHealthy {
		t.Fatalf("t-steady: %+v", d)
	}
	if d := byTask["t-slow"]; !d.Reassign || d.Reason != ReasonReassign {
		t.Fatalf("t-slow: %+v", d)
	}
	if d := byTask["t-ghost"]; !d.Reassign || d.Reason != ReasonNoWorker {
		t.Fatalf("t-ghost: %+v", d)
	}
	if d := byTask["t-trainee"]; d.Reassign || d.Reason != ReasonNoHistory {
		t.Fatalf("t-trainee: %+v", d)
	}
}

func TestSweepGhostExpired(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	tm := taskq.NewManager(clk)
	reg := profile.NewRegistry()
	p, _ := reg.Register("ghost", athens)
	_ = p
	tm.Submit(taskq.Task{ID: "t", Deadline: clk.Now().Add(30 * time.Second), Category: "traffic"})
	tm.Assign("t", "ghost")
	reg.Deregister("ghost")
	clk.Advance(60 * time.Second) // past the deadline
	decisions := Monitor{}.Sweep(reg, tm, clk.Now())
	if len(decisions) != 1 || decisions[0].Reassign {
		t.Fatalf("expired ghost task reassigned: %+v", decisions)
	}
}
